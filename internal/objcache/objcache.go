// Package objcache is a sharded, content-addressed, bounded LRU cache
// with singleflight deduplication, built for memoizing compilation work
// on the evaluation pipeline (ccache for the simulated toolchain).
//
// Keys are 64-bit content fingerprints (the caller derives them from the
// program, module identity, compilation vector and machine); values are
// opaque. Because the modeled compiler is a pure function of its key
// inputs, a cached value is bit-identical to a recomputation, so the
// cache can only change how much work runs — never what any evaluation
// observes. See DESIGN.md §9 for the purity argument.
//
// Three properties matter at paper scale (K=1000 samples × J modules ×
// several machines):
//
//   - sharding: keys are spread over power-of-two shards, each with its
//     own lock, so GOMAXPROCS evaluation workers don't serialize on one
//     mutex;
//   - singleflight: concurrent Gets of the same missing key do the work
//     once — the first caller computes, the rest wait and share the
//     result (they are counted as "coalesced", not as hits or misses);
//   - bounded memory: each shard holds an LRU list capped at
//     capacity/shards entries, so a week-long campaign cannot grow the
//     cache without bound.
//
// The hot paths are deliberately allocation-lean: the LRU list is
// intrusive (entries carry their own links, no container/list elements),
// stats are plain per-shard counters folded on demand (no cross-core
// atomic traffic), and the singleflight wait channel is only allocated
// when a second caller actually shows up — the common uncontended miss
// pays for the entry, and nothing else.
package objcache

import (
	"sync"
	"sync/atomic"
)

// shardCount is the number of independently locked shards. Power of two
// so shard selection is a mask of the (already well-mixed) key. 16 is
// enough to keep worker pools off each other's locks without inflating
// the fixed per-cache footprint (a cold session builds three tiers of
// shard maps before doing any work).
const shardCount = 16

// Stats is a point-in-time snapshot of cache activity. Hits, Misses,
// Coalesced and SpillHits partition completed Gets; how a given Get
// classifies can
// depend on goroutine scheduling (a racing worker may turn a would-be
// miss into a coalesced wait), so stats are observability, never part of
// any deterministic output.
type Stats struct {
	// Hits counts Gets served from a resident entry.
	Hits int64
	// Misses counts Gets that ran the compute function.
	Misses int64
	// Coalesced counts Gets that piggybacked on another goroutine's
	// in-flight compute for the same key (singleflight dedup).
	Coalesced int64
	// Evictions counts entries dropped by the LRU bound.
	Evictions int64
	// WorkSaved accumulates the caller-declared work units (the second
	// return of the compute function) of every hit, coalesced and
	// spill-served Get — the work that would have run without the cache.
	WorkSaved int64

	// SpillHits counts Gets served from the on-disk spill tier;
	// SpillWrites counts entries committed to it (write-behind on
	// eviction plus SpillAll). SpillCorrupt counts damaged spill files
	// that degraded to misses; SpillErrors counts failed spill commits.
	// All zero without an attached spill tier.
	SpillHits, SpillWrites, SpillCorrupt, SpillErrors int64
}

// Outcome classifies one completed Get for observers: served resident
// (hit), computed (miss), or deduplicated onto another goroutine's
// in-flight compute (coalesced).
type Outcome uint8

const (
	// OutcomeHit is a Get served from a resident entry.
	OutcomeHit Outcome = iota
	// OutcomeMiss is a Get that ran the compute function.
	OutcomeMiss
	// OutcomeCoalesced is a Get that waited on an in-flight compute.
	OutcomeCoalesced
	// OutcomeSpillHit is a Get served from the on-disk spill tier
	// (memory miss, disk hit — no compute ran).
	OutcomeSpillHit
)

// String returns the outcome's wire name.
func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeMiss:
		return "miss"
	case OutcomeCoalesced:
		return "coalesced"
	case OutcomeSpillHit:
		return "spill_hit"
	default:
		return "unknown"
	}
}

// Cache is a sharded LRU keyed by uint64 fingerprints.
type Cache struct {
	shards   [shardCount]shard
	perShard int
	// obs, when set, is called once per completed Get with its outcome,
	// outside any shard lock. Atomic because observers are swapped while
	// concurrent Gets are in flight (every new session sharing the cache
	// re-wires it). Like Stats, outcomes depend on goroutine scheduling,
	// so observers feed observability only — never deterministic outputs.
	obs atomic.Pointer[func(Outcome)]
	// spill, when set via AttachSpill, is the on-disk third tier (see
	// spill.go).
	spill *spillState
}

type shard struct {
	mu     sync.Mutex
	items  map[uint64]*entry
	flight map[uint64]*flightCall
	// Intrusive LRU list: head = most recently used.
	head, tail *entry

	// Entry storage: new entries come from slab (block allocation, one
	// malloc per entrySlab entries) and evicted entries are recycled
	// through freeE, so a cache's fill phase — the dominant allocation
	// site of a cold tuning session — costs ~1/entrySlab allocations per
	// miss instead of one.
	freeE *entry
	slab  []entry
	// freeF recycles flightCalls from uncontended misses (the common
	// case). A flightCall that ever had a waiter is never recycled: the
	// waiter still reads it after the computing goroutine moves on.
	freeF *flightCall

	hits, misses, coalesced, evictions, workSaved, spillHits int64
}

// entrySlab is the block size for entry allocation.
const entrySlab = 256

type entry struct {
	key        uint64
	val        any
	work       int64
	prev, next *entry
}

// newEntry returns a zero-linked entry, recycled or slab-allocated.
// Caller holds the shard lock.
func (sh *shard) newEntry(key uint64, val any, work int64) *entry {
	e := sh.freeE
	if e != nil {
		sh.freeE = e.next
		e.next = nil
	} else {
		if len(sh.slab) == 0 {
			sh.slab = make([]entry, entrySlab)
		}
		e = &sh.slab[0]
		sh.slab = sh.slab[1:]
	}
	e.key, e.val, e.work = key, val, work
	return e
}

// freeEntry recycles an evicted entry. Caller holds the shard lock; e
// must already be unlinked.
func (sh *shard) freeEntry(e *entry) {
	e.val = nil // release the value to the GC; the LRU no longer owns it
	e.prev = nil
	e.next = sh.freeE
	sh.freeE = e
}

// flightCall is one in-progress compute shared by coalesced waiters.
// done is nil until the first waiter arrives (created under the shard
// lock); the computing goroutine closes it — if present — after val/work
// (or panicked) are written, so waiters read them race-free.
type flightCall struct {
	done     chan struct{}
	val      any
	work     int64
	panicked any
	next     *flightCall // freelist link, only while recycled
}

// newFlight returns a reset flightCall. Caller holds the shard lock.
func (sh *shard) newFlight() *flightCall {
	fc := sh.freeF
	if fc == nil {
		return &flightCall{}
	}
	sh.freeF = fc.next
	*fc = flightCall{}
	return fc
}

// New returns a cache bounded to roughly `capacity` entries (split
// evenly across shards, minimum one entry per shard). capacity must be
// positive.
func New(capacity int) *Cache {
	if capacity < 1 {
		panic("objcache: capacity must be >= 1")
	}
	perShard := (capacity + shardCount - 1) / shardCount
	c := &Cache{perShard: perShard}
	for i := range c.shards {
		c.shards[i].items = make(map[uint64]*entry)
		c.shards[i].flight = make(map[uint64]*flightCall)
	}
	return c
}

// SetObserver registers fn to observe each completed Get; pass nil to
// detach. Safe to swap while Gets are in flight: in-flight requests
// observe to whichever function they load. A panicking compute is not
// observed — the Get never completed.
func (c *Cache) SetObserver(fn func(Outcome)) {
	if fn == nil {
		c.obs.Store(nil)
		return
	}
	c.obs.Store(&fn)
}

// observe reports one completed Get. Must be called without shard locks
// held: observers may do their own locking (trace recorders do).
func (c *Cache) observe(o Outcome) {
	if fn := c.obs.Load(); fn != nil {
		(*fn)(o)
	}
}

// unlink removes e from the LRU list (e must be resident).
func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (sh *shard) pushFront(e *entry) {
	e.prev, e.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// Get returns the value for key, computing it at most once across
// concurrent callers. compute returns the value plus its cost in
// caller-defined work units (credited to Stats.WorkSaved whenever the
// cached value is reused). A panic in compute is propagated to every
// waiting caller and nothing is cached.
func (c *Cache) Get(key uint64, compute func() (any, int64)) any {
	sh := &c.shards[key&(shardCount-1)]
	sh.mu.Lock()
	if e, ok := sh.items[key]; ok {
		if sh.head != e {
			sh.unlink(e)
			sh.pushFront(e)
		}
		sh.hits++
		sh.workSaved += e.work
		v := e.val
		sh.mu.Unlock()
		c.observe(OutcomeHit)
		return v
	}
	if fc, ok := sh.flight[key]; ok {
		if fc.done == nil {
			fc.done = make(chan struct{})
		}
		done := fc.done
		sh.coalesced++
		sh.mu.Unlock()
		<-done
		if fc.panicked != nil {
			panic(fc.panicked)
		}
		sh.mu.Lock()
		sh.workSaved += fc.work
		sh.mu.Unlock()
		c.observe(OutcomeCoalesced)
		return fc.val
	}
	fc := sh.newFlight()
	sh.flight[key] = fc
	sh.mu.Unlock()

	// Memory miss: probe the spill tier before running compute. The
	// probe sits after singleflight registration, so concurrent Gets of
	// one key do a single disk read (the rest coalesce as usual).
	if val, work, ok := c.spillLoad(key); ok {
		fc.val, fc.work = val, work
		c.commit(sh, key, fc, val, work, true)
		c.observe(OutcomeSpillHit)
		return val
	}

	completed := false
	defer func() {
		if completed {
			return
		}
		// compute panicked: unpark waiters with the panic value and
		// leave the key uncached so a later Get retries.
		fc.panicked = recover()
		sh.mu.Lock()
		delete(sh.flight, key)
		done := fc.done
		sh.mu.Unlock()
		if done != nil {
			close(done)
		}
		panic(fc.panicked)
	}()
	val, work := compute()
	completed = true

	fc.val, fc.work = val, work
	c.commit(sh, key, fc, val, work, false)
	c.observe(OutcomeMiss)
	return val
}

// commit finishes a Get that produced a value (computed or
// spill-loaded): it installs the entry, applies the LRU bound, unparks
// waiters, and write-behind-spills whatever the bound evicted. Called
// without the shard lock held.
func (c *Cache) commit(sh *shard, key uint64, fc *flightCall, val any, work int64, fromSpill bool) {
	var evicted []spillItem
	sh.mu.Lock()
	delete(sh.flight, key)
	if fromSpill {
		sh.spillHits++
		sh.workSaved += work
	} else {
		sh.misses++
	}
	if _, ok := sh.items[key]; !ok {
		e := sh.newEntry(key, val, work)
		sh.pushFront(e)
		sh.items[key] = e
		for len(sh.items) > c.perShard {
			old := sh.tail
			sh.unlink(old)
			delete(sh.items, old.key)
			if c.spill != nil {
				// Capture before freeEntry releases the value; the
				// write happens after unlock.
				evicted = append(evicted, spillItem{key: old.key, val: old.val, work: old.work})
			}
			sh.freeEntry(old)
			sh.evictions++
		}
	}
	done := fc.done
	if done == nil {
		// No waiter ever saw this flightCall (waiters set done under the
		// lock before the final delete above), so it is exclusively ours
		// to recycle.
		fc.val = nil
		fc.next = sh.freeF
		sh.freeF = fc
	}
	sh.mu.Unlock()
	if done != nil {
		close(done)
	}
	c.writeBehind(evicted)
}

// Lookup returns the value for key if it is resident, behaving exactly
// like the hit path of Get (LRU touch, hit count, work-saved credit,
// observer callback). It exists so hot paths can probe the cache without
// constructing the compute closure a Get requires even on a hit; a miss
// returns (nil, false) with no side effects, and the caller falls back to
// Get.
func (c *Cache) Lookup(key uint64) (any, bool) {
	sh := &c.shards[key&(shardCount-1)]
	sh.mu.Lock()
	e, ok := sh.items[key]
	if !ok {
		sh.mu.Unlock()
		return nil, false
	}
	if sh.head != e {
		sh.unlink(e)
		sh.pushFront(e)
	}
	sh.hits++
	sh.workSaved += e.work
	v := e.val
	sh.mu.Unlock()
	c.observe(OutcomeHit)
	return v, true
}

// Peek reports whether key is resident, without touching LRU order or
// stats (test/introspection hook).
func (c *Cache) Peek(key uint64) bool {
	sh := &c.shards[key&(shardCount-1)]
	sh.mu.Lock()
	_, ok := sh.items[key]
	sh.mu.Unlock()
	return ok
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// Capacity returns the total entry bound.
func (c *Cache) Capacity() int { return c.perShard * shardCount }

// Stats snapshots the activity counters.
func (c *Cache) Stats() Stats {
	var s Stats
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Hits += sh.hits
		s.Misses += sh.misses
		s.Coalesced += sh.coalesced
		s.Evictions += sh.evictions
		s.WorkSaved += sh.workSaved
		s.SpillHits += sh.spillHits
		sh.mu.Unlock()
	}
	if sp := c.spill; sp != nil {
		s.SpillWrites = sp.writes.Load()
		s.SpillCorrupt = sp.corrupt.Load()
		s.SpillErrors = sp.errs.Load()
	}
	return s
}
