package objcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
)

// jsonCodec round-trips string values as JSON — enough to exercise the
// spill machinery without the compiler layer.
type jsonCodec struct{}

func (jsonCodec) Encode(key uint64, val any) ([]byte, bool) {
	s, ok := val.(string)
	if !ok {
		return nil, false
	}
	data, err := json.Marshal(s)
	if err != nil {
		return nil, false
	}
	return data, true
}

func (jsonCodec) Decode(key uint64, data []byte) (any, bool) {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, false
	}
	return s, true
}

func newSpilled(t *testing.T, capacity int, dir string) *Cache {
	t.Helper()
	c := New(capacity)
	if err := c.AttachSpill(dir, jsonCodec{}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSpillEvictionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// Capacity 16 = one entry per shard: a second insert into a shard
	// evicts the first, which must land on disk and read back through.
	c := newSpilled(t, 16, dir)
	computes := 0
	get := func(key uint64) any {
		return c.Get(key, func() (any, int64) {
			computes++
			return fmt.Sprintf("val-%d", key), 7
		})
	}
	// Keys 0 and 16 share shard 0; inserting 16 evicts 0.
	get(0)
	get(16)
	if computes != 2 {
		t.Fatalf("computes = %d, want 2", computes)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.SpillWrites != 1 {
		t.Fatalf("stats = %+v, want 1 eviction spilled", st)
	}
	// Key 0 is gone from memory but must come back from disk without
	// computing (evicting 16, which spills in turn).
	if got := get(0); got != "val-0" {
		t.Fatalf("spill-served Get = %v", got)
	}
	if computes != 2 {
		t.Fatalf("spill hit ran compute (computes = %d)", computes)
	}
	st = c.Stats()
	if st.SpillHits != 1 {
		t.Fatalf("stats = %+v, want 1 spill hit", st)
	}
	if st.WorkSaved != 7 {
		t.Fatalf("WorkSaved = %d, want 7 (spill hit credits work)", st.WorkSaved)
	}
}

func TestSpillAllSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c := newSpilled(t, 1024, dir)
	for k := uint64(0); k < 40; k++ {
		k := k
		c.Get(k, func() (any, int64) { return fmt.Sprintf("val-%d", k), 3 })
	}
	c.SpillAll()
	if st := c.Stats(); st.SpillWrites != 40 {
		t.Fatalf("SpillAll wrote %d entries, want 40", st.SpillWrites)
	}

	// "Restart": a fresh cache over the same directory serves every key
	// from disk without running compute.
	c2 := newSpilled(t, 1024, dir)
	for k := uint64(0); k < 40; k++ {
		k := k
		got := c2.Get(k, func() (any, int64) {
			t.Errorf("key %d recomputed after restart", k)
			return nil, 0
		})
		if got != fmt.Sprintf("val-%d", k) {
			t.Fatalf("key %d = %v after restart", k, got)
		}
	}
	st := c2.Stats()
	if st.SpillHits != 40 || st.Misses != 0 {
		t.Fatalf("restart stats = %+v, want 40 spill hits, 0 misses", st)
	}
}

func TestSpillObserverSeesSpillHits(t *testing.T) {
	dir := t.TempDir()
	c := newSpilled(t, 1024, dir)
	c.Get(5, func() (any, int64) { return "v", 1 })
	c.SpillAll()

	c2 := newSpilled(t, 1024, dir)
	var outcomes []Outcome
	c2.SetObserver(func(o Outcome) { outcomes = append(outcomes, o) })
	c2.Get(5, func() (any, int64) { t.Error("computed"); return nil, 0 })
	c2.Get(5, func() (any, int64) { t.Error("computed"); return nil, 0 })
	want := []Outcome{OutcomeSpillHit, OutcomeHit}
	if len(outcomes) != len(want) || outcomes[0] != want[0] || outcomes[1] != want[1] {
		t.Fatalf("outcomes = %v, want %v", outcomes, want)
	}
	if OutcomeSpillHit.String() != "spill_hit" {
		t.Fatalf("OutcomeSpillHit.String() = %q", OutcomeSpillHit.String())
	}
}

// TestSpillCorruptionTolerance is the satellite table test for the
// spill tier: damaged spill files degrade to ordinary misses (compute
// runs, the Get succeeds) with the corruption counted — never an error
// and never a wrong value.
func TestSpillCorruptionTolerance(t *testing.T) {
	key := uint64(9)
	cases := []struct {
		name   string
		mangle func(t *testing.T, path string)
	}{
		{"truncated-half", func(t *testing.T, path string) {
			data := mustRead(t, path)
			mustWrite(t, path, data[:len(data)/2])
		}},
		{"truncated-empty", func(t *testing.T, path string) {
			mustWrite(t, path, nil)
		}},
		{"flipped-byte-in-body", func(t *testing.T, path string) {
			data := mustRead(t, path)
			var e spillEntry
			if err := json.Unmarshal(data, &e); err != nil {
				t.Fatal(err)
			}
			// Flip inside the body payload, re-embedding it verbatim so
			// only the checksum can catch the damage.
			e.Body[len(e.Body)/2] ^= 0x04
			out, err := json.Marshal(&e)
			if err != nil {
				t.Fatal(err)
			}
			mustWrite(t, path, out)
		}},
		{"garbage", func(t *testing.T, path string) {
			mustWrite(t, path, []byte("\xde\xad\xbe\xef"))
		}},
		{"wrong-version", func(t *testing.T, path string) {
			rewriteSpill(t, path, func(e *spillEntry) { e.Version = spillVersion + 1 })
		}},
		{"wrong-key", func(t *testing.T, path string) {
			rewriteSpill(t, path, func(e *spillEntry) { e.Key = "00000000000000ff" })
		}},
		{"undecodable-body", func(t *testing.T, path string) {
			rewriteSpill(t, path, func(e *spillEntry) {
				e.Body = json.RawMessage(`{"not":"a string"}`)
				e.Checksum = spillChecksum(e.Body)
			})
		}},
		{"crash-mid-rename", func(t *testing.T, path string) {
			data := mustRead(t, path)
			mustWrite(t, path+".tmp", data[:len(data)-3])
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c := newSpilled(t, 1024, dir)
			c.Get(key, func() (any, int64) { return "good", 1 })
			c.SpillAll()
			tc.mangle(t, c.spill.path(key))

			c2 := newSpilled(t, 1024, dir)
			computed := false
			got := c2.Get(key, func() (any, int64) {
				computed = true
				return "good", 1
			})
			if got != "good" {
				t.Fatalf("Get = %v, want recomputed value", got)
			}
			if !computed {
				t.Fatal("damaged spill entry served without recompute")
			}
			st := c2.Stats()
			if tc.name != "crash-mid-rename" && st.SpillCorrupt == 0 {
				t.Fatalf("spill_corrupt did not move: %+v", st)
			}
			if st.SpillHits != 0 {
				t.Fatalf("damaged entry counted as spill hit: %+v", st)
			}
			// The recompute rewrote nothing (no eviction), but a fresh
			// SpillAll must recover the tier.
			c2.SpillAll()
			c3 := newSpilled(t, 1024, dir)
			if got := c3.Get(key, func() (any, int64) {
				t.Error("recomputed after recovery")
				return nil, 0
			}); got != "good" {
				t.Fatalf("post-recovery Get = %v", got)
			}
		})
	}
}

func TestSpillDeclinedValuesStayMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	c := newSpilled(t, 1024, dir)
	c.Get(3, func() (any, int64) { return 12345, 1 }) // int: codec declines
	c.SpillAll()
	st := c.Stats()
	if st.SpillWrites != 0 || st.SpillErrors != 0 {
		t.Fatalf("declined value was spilled or errored: %+v", st)
	}
}

func TestSpillConcurrentGets(t *testing.T) {
	dir := t.TempDir()
	c := newSpilled(t, 1024, dir)
	for k := uint64(0); k < 16; k++ {
		k := k
		c.Get(k, func() (any, int64) { return strconv.FormatUint(k, 10), 1 })
	}
	c.SpillAll()

	c2 := newSpilled(t, 1024, dir)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := uint64(i % 16)
				got := c2.Get(k, func() (any, int64) {
					t.Errorf("key %d recomputed", k)
					return nil, 0
				})
				if got != strconv.FormatUint(k, 10) {
					t.Errorf("key %d = %v", k, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := c2.Stats()
	if st.SpillCorrupt != 0 || st.Misses != 0 {
		t.Fatalf("concurrent spill reads went wrong: %+v", st)
	}
	// Singleflight dedups the disk read: exactly one spill hit per key,
	// everything else hits memory or coalesces.
	if st.SpillHits != 16 {
		t.Fatalf("SpillHits = %d, want 16", st.SpillHits)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func mustWrite(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func rewriteSpill(t *testing.T, path string, mut func(*spillEntry)) {
	t.Helper()
	var e spillEntry
	if err := json.Unmarshal(mustRead(t, path), &e); err != nil {
		t.Fatal(err)
	}
	mut(&e)
	out, err := json.Marshal(&e)
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, path, out)
}
