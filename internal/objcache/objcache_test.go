package objcache

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetComputesOnceAndHits(t *testing.T) {
	c := New(64)
	calls := 0
	compute := func() (any, int64) { calls++; return "v", 7 }
	if got := c.Get(42, compute); got != "v" {
		t.Fatalf("Get = %v", got)
	}
	if got := c.Get(42, compute); got != "v" {
		t.Fatalf("second Get = %v", got)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Coalesced != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.WorkSaved != 7 {
		t.Fatalf("WorkSaved = %d, want 7", st.WorkSaved)
	}
	if !c.Peek(42) || c.Peek(43) {
		t.Fatal("Peek disagrees with contents")
	}
}

func TestLRUBound(t *testing.T) {
	c := New(shardCount) // one entry per shard
	// Two keys landing in the same shard: the second evicts the first.
	k1, k2 := uint64(5), uint64(5+shardCount)
	c.Get(k1, func() (any, int64) { return 1, 1 })
	c.Get(k2, func() (any, int64) { return 2, 1 })
	if c.Peek(k1) {
		t.Fatal("k1 survived past the shard capacity")
	}
	if !c.Peek(k2) {
		t.Fatal("k2 missing")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	// An evicted key recomputes (a miss, not a hit).
	calls := 0
	c.Get(k1, func() (any, int64) { calls++; return 1, 1 })
	if calls != 1 {
		t.Fatal("evicted key did not recompute")
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	c := New(64)
	const waiters = 32
	var computes atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Get(99, func() (any, int64) {
				computes.Add(1)
				<-gate // hold the flight open so others coalesce
				return "shared", 3
			})
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times under concurrency", n)
	}
	for i, r := range results {
		if r != "shared" {
			t.Fatalf("waiter %d got %v", i, r)
		}
	}
	st := c.Stats()
	if st.Hits+st.Misses+st.Coalesced != waiters {
		t.Fatalf("hit+miss+coalesced = %d, want %d (stats %+v)",
			st.Hits+st.Misses+st.Coalesced, waiters, st)
	}
	if st.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", st.Misses)
	}
	// Every reuse (hit or coalesced) credits the declared work units.
	if st.WorkSaved != 3*(waiters-1) {
		t.Fatalf("WorkSaved = %d, want %d", st.WorkSaved, 3*(waiters-1))
	}
}

func TestComputePanicPropagatesAndRetries(t *testing.T) {
	c := New(64)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic swallowed")
			}
		}()
		c.Get(7, func() (any, int64) { panic("boom") })
	}()
	if c.Peek(7) {
		t.Fatal("panicked compute was cached")
	}
	// The key stays usable afterwards.
	if got := c.Get(7, func() (any, int64) { return "ok", 1 }); got != "ok" {
		t.Fatalf("retry Get = %v", got)
	}
}

func TestNewRejectsNonPositiveCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}
