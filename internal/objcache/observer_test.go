package objcache

import (
	"sync"
	"testing"
	"time"
)

// outcomeLog is a race-safe observer sink.
type outcomeLog struct {
	mu  sync.Mutex
	got []Outcome
}

func (l *outcomeLog) observe(o Outcome) {
	l.mu.Lock()
	l.got = append(l.got, o)
	l.mu.Unlock()
}

func (l *outcomeLog) counts() (hit, miss, coalesced int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, o := range l.got {
		switch o {
		case OutcomeHit:
			hit++
		case OutcomeMiss:
			miss++
		case OutcomeCoalesced:
			coalesced++
		}
	}
	return
}

func TestOutcomeString(t *testing.T) {
	want := map[Outcome]string{
		OutcomeHit:       "hit",
		OutcomeMiss:      "miss",
		OutcomeCoalesced: "coalesced",
		Outcome(99):      "unknown",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, o.String(), s)
		}
	}
}

// The observer must see exactly one outcome per completed Get, matching
// the hit/miss classification Stats reports.
func TestObserverHitMiss(t *testing.T) {
	c := New(8)
	var log outcomeLog
	c.SetObserver(log.observe)
	compute := func() (any, int64) { return "v", 1 }
	c.Get(1, compute) // miss
	c.Get(1, compute) // hit
	c.Get(2, compute) // miss
	hit, miss, coalesced := log.counts()
	if hit != 1 || miss != 2 || coalesced != 0 {
		t.Fatalf("observed (hit=%d, miss=%d, coalesced=%d), want (1, 2, 0)", hit, miss, coalesced)
	}
	st := c.Stats()
	if st.Hits != int64(hit) || st.Misses != int64(miss) {
		t.Fatalf("observer disagrees with Stats: %+v vs %+v", log.got, st)
	}
	// Detaching stops observation; Stats keeps counting.
	c.SetObserver(nil)
	c.Get(1, compute)
	if h, _, _ := log.counts(); h != 1 {
		t.Fatal("detached observer still called")
	}
	if c.Stats().Hits != 2 {
		t.Fatal("Stats stopped counting after observer detach")
	}
}

// A Get that piggybacks on an in-flight compute must be observed as
// coalesced.
func TestObserverCoalesced(t *testing.T) {
	c := New(8)
	var log outcomeLog
	c.SetObserver(log.observe)
	inFlight := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.Get(7, func() (any, int64) {
			close(inFlight)
			<-release
			return "v", 1
		})
	}()
	<-inFlight
	go func() {
		defer wg.Done()
		c.Get(7, func() (any, int64) { t.Error("coalesced Get ran compute"); return nil, 0 })
	}()
	// Wait for the second Get to register as a waiter before releasing.
	for c.Stats().Coalesced == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()
	if _, miss, coalesced := log.counts(); miss != 1 || coalesced != 1 {
		t.Fatalf("observed (miss=%d, coalesced=%d), want (1, 1)", miss, coalesced)
	}
}

// A panicking compute is not a completed Get: the observer must not fire
// for it, and a later retry observes a normal miss.
func TestObserverSkipsPanickedCompute(t *testing.T) {
	c := New(8)
	var log outcomeLog
	c.SetObserver(log.observe)
	func() {
		defer func() { recover() }()
		c.Get(3, func() (any, int64) { panic("boom") })
	}()
	if len(log.got) != 0 {
		t.Fatalf("panicked Get was observed: %v", log.got)
	}
	c.Get(3, func() (any, int64) { return "v", 1 })
	if _, miss, _ := log.counts(); miss != 1 {
		t.Fatal("retry after panic not observed as a miss")
	}
}
