// Package funcytuner is the public API of the FuncyTuner reproduction — a
// per-loop compiler-flag auto-tuning framework after Wang et al., "Funcy-
// Tuner: Auto-tuning Scientific Applications With Per-loop Compilation"
// (ICPP 2019).
//
// The pipeline mirrors the paper's Fig. 4:
//
//  1. Profile the O3 baseline with Caliper-style instrumentation and
//     outline every loop at ≥ 1% of end-to-end runtime into its own
//     compilation module (§3.3).
//  2. Compile the program uniformly with K pre-sampled compilation
//     vectors (CVs) and collect per-loop runtimes (§2.2, Fig. 4).
//  3. Search: prune each module's CV pool to the top X by its own
//     measured time, re-sample per-module CVs from the pruned pools, and
//     measure K assembled executables end-to-end — Caliper-guided random
//     search, CFR (Algorithm 1). The minimum wins.
//
// The package also exposes the paper's reference algorithms (per-program
// Random search, per-function random search FR, greedy combination G with
// its G.Independent bound) and the modeled experimental substrate: the
// seven benchmark programs of Table 1, the three machines of Table 2, and
// an ICC-like 33-flag optimization space (~2.2e13 points).
//
// Quick start:
//
//	prog, _ := funcytuner.Benchmark(funcytuner.CloverLeaf)
//	machine, _ := funcytuner.MachineByName("broadwell")
//	tuner := funcytuner.NewTuner(funcytuner.Options{Machine: machine})
//	rep, _ := tuner.Tune(prog, funcytuner.TuningInput(prog.Name, machine))
//	fmt.Printf("CFR speedup over -O3: %.3f\n", rep.Best.Speedup)
//
// Everything is a deterministic simulation: compilation, execution and
// measurement noise all derive from seeded streams, so results reproduce
// bit-for-bit. See DESIGN.md for the substitution inventory (what the
// paper ran on real ICC/hardware versus what this repository models).
package funcytuner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/caliper"
	"funcytuner/internal/compiler"
	"funcytuner/internal/core"
	"funcytuner/internal/exec"
	"funcytuner/internal/faults"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
	"funcytuner/internal/metrics"
	"funcytuner/internal/outline"
	"funcytuner/internal/trace"
	"funcytuner/internal/xrand"
)

// Re-exported substrate types. Loops, programs and inputs are plain data;
// see the ir package documentation on field semantics.
type (
	// Program is a tunable program model (hot loops + non-loop code).
	Program = ir.Program
	// Loop is one hot-loop feature vector.
	Loop = ir.Loop
	// Input selects a workload (problem size and time-step count).
	Input = ir.Input
	// Machine is a platform model (Table 2).
	Machine = arch.Machine
	// CV is a compilation vector — one value per compiler flag.
	CV = flagspec.CV
	// Space is a compiler optimization space (COS).
	Space = flagspec.Space
	// Profile is a Caliper-style per-loop profile.
	Profile = caliper.Profile
	// FaultRates configures deterministic fault injection (per-evaluation
	// probabilities of compile failure, run crash, timeout and transient
	// flake). The zero value disables injection.
	FaultRates = faults.Rates
	// Checkpoint is the JSON-portable partial state of a tuning run.
	Checkpoint = core.Checkpoint
	// TraceRecorder accumulates structured trace events from a run (see
	// Options.Trace and internal/trace for the event taxonomy).
	TraceRecorder = trace.Recorder
	// TuningTrace is an ordered collection of trace events, as returned by
	// TraceRecorder.Snapshot. Its Canonical view is deterministic; its
	// WriteJSONL/ReadJSONL round-trip is byte-stable.
	TuningTrace = trace.Trace
	// MetricsSnapshot is a frozen view of a run's counters, gauges and
	// histograms (Report.Metrics).
	MetricsSnapshot = metrics.Snapshot
	// WorkerGate bounds evaluation concurrency across tuners (see
	// Options.Gate): every evaluation holds one gate slot while it runs,
	// so one gate shared by many concurrent tuning runs caps machine-wide
	// parallelism. Gates only sequence scheduling; they never change
	// results.
	WorkerGate = core.WorkerGate
	// Evaluator executes evaluation claims outside the tuning process —
	// the coordinator half of a distributed fleet (see Options.Evaluator
	// and internal/fleet). Each claim is a pure function of the run's
	// seed and the claim identity, so remote execution cannot change any
	// Report.
	Evaluator = core.RemoteEvaluator
	// EvalRequest identifies one evaluation claim (phase, sample, CVs).
	EvalRequest = core.EvalRequest
	// EvalOutcome is one completed claim's portable result: measured
	// times, cost delta, quarantine decisions, and the trace span.
	EvalOutcome = core.EvalOutcome
	// CostSnapshot is the JSON-portable form of a run's cost ledger,
	// carried in checkpoints and fleet evaluation outcomes.
	CostSnapshot = core.CostSnapshot
)

// NewTraceRecorder returns an empty trace recorder for Options.Trace.
// Call WallClock on it to add wall-clock stamps for live inspection —
// the canonical (deterministic) trace strips them.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// ErrKilled reports that a tuning run hit its simulated node failure
// (Options.KillAfterEvals) mid-run; resume it from its checkpoint.
var ErrKilled = core.ErrKilled

// DefaultFaultRates returns a realistic long-campaign fault mix (2% ICEs,
// 1% run crashes, 0.5% timeouts, 4% transient flakes). Scale it with
// FaultRates.Scale to dial severity.
func DefaultFaultRates() FaultRates { return faults.Default() }

// LoadCheckpoint reads and validates a checkpoint file written during a
// run with Options.Checkpoint set.
func LoadCheckpoint(path string) (*Checkpoint, error) { return core.LoadCheckpointFile(path) }

// Benchmark name constants (Table 1).
const (
	LULESH     = apps.LULESH
	CloverLeaf = apps.CloverLeaf
	AMG        = apps.AMG
	Optewe     = apps.Optewe
	Bwaves     = apps.Bwaves
	Fma3d      = apps.Fma3d
	Swim       = apps.Swim
)

// Benchmarks returns the benchmark names in the paper's order.
func Benchmarks() []string { return apps.Names() }

// Benchmark returns the named benchmark's calibrated program model.
func Benchmark(name string) (*Program, error) { return apps.Get(name) }

// Machines returns the three platform models (Opteron, Sandy Bridge,
// Broadwell).
func Machines() []*Machine { return arch.All() }

// MachineByName looks up a platform by short name.
func MachineByName(name string) (*Machine, error) { return arch.ByName(name) }

// TuningInput returns Table 2's tuning input for (benchmark, machine).
func TuningInput(app string, m *Machine) Input { return apps.TuningInput(app, m) }

// Techniques returns the selectable Options.Technique names in display
// order ("cfr", "bo", "ga").
func Techniques() []string { return core.Techniques() }

// ValidTechnique reports whether name is a selectable Options.Technique
// (the empty string selects the default, CFR).
func ValidTechnique(name string) bool { return core.ValidTechnique(name) }

// ICCSpace returns the 33-flag Intel-compiler-like optimization space.
func ICCSpace() *Space { return flagspec.ICC() }

// GCCSpace returns the GCC-like optimization space (Fig. 1).
func GCCSpace() *Space { return flagspec.GCC() }

// Options configure a Tuner.
type Options struct {
	// Machine is the target platform (default: Broadwell).
	Machine *Machine
	// Space is the flag space (default: the ICC space).
	Space *Space
	// Samples is K, the evaluation budget per phase (default 1000).
	Samples int
	// TopX is CFR's per-module pruning width (default 50).
	TopX int
	// Technique selects the search algorithm that spends the
	// post-collection evaluation budget: "cfr" (the default; Algorithm
	// 1's Caliper-guided random search), "bo" (an analytical-surrogate
	// Bayesian optimizer), or "ga" (a generational genetic algorithm).
	// All three draw assemblies from the same Caliper-pruned per-module
	// pools and run behind the same suggest/observe driver, so the full
	// determinism contract holds regardless of technique: equal seeds
	// reproduce exactly, kill/resume is bit-equal, and caches, fleets
	// and worker counts cannot change the Report. Only valid with Tune;
	// TuneAdaptive and Compare are defined in terms of CFR.
	Technique string
	// WarmStart seeds the technique's initial design/population with
	// the best assemblies of related prior runs found in the results
	// repository (same flag flavor, nearest by machine then program).
	// Requires RepoPath or Repo, and Technique "bo" or "ga" — CFR has
	// no initial design to seed. The chosen seed set is fingerprinted
	// into the repository key, so runs warmed from different repository
	// states are keyed (and reproduce) separately.
	WarmStart bool
	// Seed names the tuning run; equal seeds reproduce exactly.
	Seed string
	// Noisy applies measurement noise (default true, like real runs).
	Noisy *bool
	// Workers bounds parallel evaluation (0 = GOMAXPROCS).
	Workers int
	// HotThreshold is the outlining threshold (default 0.01, §3.3).
	HotThreshold float64
	// CacheSize bounds the content-addressed compile/link cache, in
	// entries. 0 selects the default size (compiler.DefaultCacheSize);
	// negative disables caching entirely. Compilation is a pure function
	// of its inputs, so cache-on runs are bit-identical to cache-off runs
	// — the cache only removes redundant work (Report.Cache reports how
	// much).
	CacheSize int
	// SharedCache, when non-nil, attaches an existing compile/link cache
	// instead of building a private one (CacheSize is then ignored).
	// Cache keys include the program seed and name, machine identity and
	// flag-space flavor, so one cache can safely back many tuners — a
	// fleet worker shares one across every job it evaluates, and warm
	// jobs skip the compile work a previous job already did. Purity is
	// unchanged: results are bit-identical with or without sharing.
	SharedCache *CompileCache
	// RepoPath, when non-empty, opens (creating if needed) a persistent
	// results repository at this directory and stores every completed
	// Report there, content-addressed by everything that determines the
	// outcome (program fingerprint × machine × flag space × search
	// config). See also SkipExist.
	RepoPath string
	// Repo, when non-nil, attaches an existing repository handle instead
	// of opening RepoPath (which is then ignored) — the funcytunerd job
	// service shares one handle across every job it runs, the way
	// SharedCache shares compile work.
	Repo *ResultRepo
	// SkipExist serves a stored result when the repository already holds
	// an entry for the exact submission: the Tune call returns in one
	// lookup — no outlining, no session, no evaluations — with
	// Report.Served set. The served Report is bit-identical to the
	// recompute it replaces (its Fingerprint is re-verified against the
	// stored one on every serve; a mismatch invalidates the entry and
	// falls through to a real run). Requires RepoPath or Repo.
	SkipExist bool
	// CacheSpill, when non-empty, attaches an on-disk spill tier rooted
	// at this directory to the tuner's private compile cache: entries
	// evicted from memory are written behind and misses read through, so
	// warm-cache compile savings survive a process restart. Results are
	// bit-identical spill-on vs spill-off. Only valid with a private,
	// enabled cache — combine SharedCache with CompileCache.AttachSpill
	// instead.
	CacheSpill string
	// Unpooled disables every allocation-reuse fast path (scratch pools,
	// trace batch reuse, run-profile memoization) and makes each
	// evaluation allocate from scratch. Results are bit-identical either
	// way — this is the reference path the pooled-determinism tests
	// compare against, not a tuning choice.
	Unpooled bool

	// Faults enables deterministic fault injection on the evaluation path
	// (see FaultRates). Zero value = off; the clean path is bit-identical
	// to a tuner without the resilience machinery.
	Faults FaultRates
	// MaxRetries caps retries of transient (flake) failures (default 2).
	MaxRetries int
	// BackoffSeconds is the initial retry backoff in simulated seconds,
	// doubled per retry (default 5).
	BackoffSeconds float64
	// BackoffCapSeconds caps the exponential backoff (default 60).
	BackoffCapSeconds float64
	// TimeoutBudget is the per-evaluation deadline in simulated seconds;
	// runs exceeding it are killed and score +Inf. 0 disables it.
	TimeoutBudget float64
	// Checkpoint, when non-empty, persists tuning progress to this file so
	// a killed run can be resumed.
	Checkpoint string
	// Resume, when non-empty, loads a checkpoint file before tuning and
	// skips its completed samples; the resumed run's Report is
	// bit-identical to an uninterrupted run. A missing file starts fresh.
	// Progress keeps checkpointing to the same file unless Checkpoint
	// names a different one.
	Resume string
	// CheckpointEvery is the flush cadence in completed evaluations
	// (default 25).
	CheckpointEvery int
	// KillAfterEvals, when > 0, simulates a node failure after that many
	// evaluations (the run aborts with ErrKilled) — the crash-testing
	// hook for checkpoint/resume.
	KillAfterEvals int
	// Gate, when non-nil, bounds evaluation concurrency across tuners: a
	// single gate shared by several concurrent runs (the funcytunerd job
	// service) caps total in-flight evaluations regardless of each run's
	// Workers setting. Nil leaves the run bounded only by Workers.
	Gate WorkerGate
	// Evaluator, when non-nil, turns the run into a fleet coordinator:
	// every evaluation is dispatched through it (typically to remote
	// worker processes via internal/fleet) instead of executing
	// in-process, and its outcome is merged as if measured locally. The
	// Report is bit-identical to a local run's — evaluations are pure
	// functions of their claims, so where they execute is unobservable.
	Evaluator Evaluator

	// Trace, when non-nil, records structured span events (session, phase,
	// compile, link, run, retry, fault, cache, eval) into the recorder as
	// the run executes. Tracing is strictly observational: a traced run's
	// Report is bit-identical to an untraced one, and the recorder's
	// Canonical() trace is itself deterministic for a given seed/config
	// across worker counts. Nil disables tracing at zero cost.
	Trace *TraceRecorder
	// Progress, when non-nil, receives periodic one-line progress reports
	// (completed evaluations, simulated hours, ETA) while tuning runs,
	// plus a final line when the run ends. Typically os.Stderr.
	Progress io.Writer
	// ProgressEvery is the progress-reporting cadence (default 5s).
	ProgressEvery time.Duration
}

// validate rejects option values that would silently misbehave. Defaults
// have already been applied.
func (o Options) validate() error {
	if o.Samples < 1 {
		return fmt.Errorf("funcytuner: Samples must be positive, got %d", o.Samples)
	}
	if o.TopX < 1 || o.TopX > o.Samples {
		return fmt.Errorf("funcytuner: TopX must be in [1, Samples], got %d", o.TopX)
	}
	if o.Workers < 0 {
		return fmt.Errorf("funcytuner: Workers must be >= 0, got %d", o.Workers)
	}
	if !(o.HotThreshold > 0 && o.HotThreshold <= 1) {
		return fmt.Errorf("funcytuner: HotThreshold must be in (0, 1], got %v", o.HotThreshold)
	}
	if o.MaxRetries < 0 {
		return fmt.Errorf("funcytuner: MaxRetries must be >= 0, got %d", o.MaxRetries)
	}
	if o.BackoffSeconds < 0 || o.BackoffCapSeconds < 0 {
		return fmt.Errorf("funcytuner: backoff seconds must be >= 0")
	}
	if o.TimeoutBudget < 0 || math.IsNaN(o.TimeoutBudget) || math.IsInf(o.TimeoutBudget, 0) {
		return fmt.Errorf("funcytuner: TimeoutBudget must be a finite value >= 0, got %v", o.TimeoutBudget)
	}
	if o.CheckpointEvery < 0 {
		return fmt.Errorf("funcytuner: CheckpointEvery must be >= 0, got %d", o.CheckpointEvery)
	}
	if o.KillAfterEvals < 0 {
		return fmt.Errorf("funcytuner: KillAfterEvals must be >= 0, got %d", o.KillAfterEvals)
	}
	if o.ProgressEvery < 0 {
		return fmt.Errorf("funcytuner: ProgressEvery must be >= 0, got %v", o.ProgressEvery)
	}
	if o.SkipExist && o.RepoPath == "" && o.Repo == nil {
		return fmt.Errorf("funcytuner: SkipExist requires RepoPath or Repo")
	}
	if !core.ValidTechnique(o.Technique) {
		return fmt.Errorf("funcytuner: unknown Technique %q (want cfr, bo, or ga)", o.Technique)
	}
	if o.WarmStart {
		if o.RepoPath == "" && o.Repo == nil {
			return fmt.Errorf("funcytuner: WarmStart requires RepoPath or Repo")
		}
		if tag := core.TechniqueTag(o.Technique); tag != core.TechniqueBO && tag != core.TechniqueGA {
			return fmt.Errorf("funcytuner: WarmStart requires Technique \"bo\" or \"ga\" (CFR has no initial design to seed)")
		}
	}
	if o.CacheSpill != "" {
		if o.SharedCache != nil {
			return fmt.Errorf("funcytuner: CacheSpill requires a private cache; attach a spill tier to the shared cache with AttachSpill instead")
		}
		if o.CacheSize < 0 {
			return fmt.Errorf("funcytuner: CacheSpill requires caching (CacheSize >= 0)")
		}
	}
	return o.Faults.Validate()
}

// Tuner drives the FuncyTuner pipeline.
type Tuner struct {
	opts Options
	tc   *compiler.Toolchain
	repo *ResultRepo
	err  error // deferred option-validation error, surfaced by Tune et al.
}

// NewTuner builds a tuner, applying defaults for unset options. Invalid
// options (negative budgets, HotThreshold outside (0, 1], malformed fault
// rates, ...) are reported by the first Tune/TuneAdaptive/Compare call.
func NewTuner(opts Options) *Tuner {
	if opts.Machine == nil {
		opts.Machine = arch.Broadwell()
	}
	if opts.Space == nil {
		opts.Space = flagspec.ICC()
	}
	if opts.Samples == 0 {
		opts.Samples = 1000
	}
	if opts.TopX == 0 {
		opts.TopX = 50
	}
	if opts.Seed == "" {
		opts.Seed = "funcytuner"
	}
	if opts.Noisy == nil {
		noisy := true
		opts.Noisy = &noisy
	}
	if opts.HotThreshold == 0 {
		opts.HotThreshold = outline.HotThreshold
	}
	tc := compiler.NewToolchain(opts.Space)
	err := opts.validate()
	switch {
	case opts.SharedCache != nil:
		tc.AttachCache(opts.SharedCache)
	case opts.CacheSize >= 0:
		cc := compiler.NewCompileCache(opts.CacheSize)
		if opts.CacheSpill != "" && err == nil {
			err = cc.AttachSpill(opts.CacheSpill)
		}
		tc.AttachCache(cc)
	}
	t := &Tuner{opts: opts, tc: tc, err: err}
	if t.err == nil {
		switch {
		case opts.Repo != nil:
			t.repo = opts.Repo
		case opts.RepoPath != "":
			t.repo, t.err = OpenResultRepo(opts.RepoPath)
		}
	}
	return t
}

// Result is one algorithm's outcome (re-exported from the core engine).
type Result = core.Result

// Report is the outcome of a full tuning run.
type Report struct {
	// Best is the search technique's result (CFR by default; BO or GA
	// when Options.Technique selects them) — FuncyTuner's answer.
	Best *Result
	// All holds every algorithm's result keyed by name (Random, FR,
	// G.realized, G.Independent, CFR — or BO/GA for non-default
	// techniques).
	All map[string]*Result
	// Profile is the O3 baseline profile used for outlining.
	Profile Profile
	// HotLoops are the outlined loop indices, hottest first.
	HotLoops []int
	// Modules is the number of compilation modules (J, §2.1).
	Modules int
	// Compiles and Runs tally the simulated tuning cost.
	Compiles, Runs int64
	// SimulatedHours is the simulated tuning wall-clock (§4.3 discusses
	// 1.5-day to 1-week real overheads).
	SimulatedHours float64
	// Faults tallies what fault injection cost the run (all zero on clean
	// runs).
	Faults FaultTally
	// Cache reports the compile/link cache's real-work counters: hits,
	// misses, singleflight coalesces, evictions, and the elided codegen
	// work. All zero with the cache disabled. These are observability,
	// not results: they depend on scheduling and cache size, so
	// Fingerprint deliberately excludes them.
	Cache CacheStats
	// Metrics is the run's instrument snapshot: counters mirroring the
	// cost ledger (compiles, runs, retries, fault classes), cache outcome
	// counters, configuration gauges, and eval-latency/retry histograms.
	// Like Cache it is observability, excluded from Fingerprint (the
	// cache counters inside it are scheduling-dependent).
	Metrics MetricsSnapshot
	// Served reports that this result came from the results repository
	// (Options.SkipExist) rather than a fresh run. A served Report is
	// bit-identical to the recompute it replaces — its Fingerprint is
	// verified against the stored one on every serve — but it carries no
	// live session, so Evaluate and EvaluateBaseline return ErrServed,
	// and Cache/Metrics are zero (no work ran).
	Served bool

	sess   *core.Session
	served *servedMeta
}

// ErrServed reports an operation that needs the live tuning session on
// a Report served from the results repository (see Report.Served).
var ErrServed = errors.New("funcytuner: report was served from the results repository and has no live session; re-tune without SkipExist to evaluate")

// CacheStats is the compile/link cache activity snapshot (re-exported
// from the compiler layer).
type CacheStats = compiler.CacheStats

// DefaultCacheSize is the default entry bound of the compile/link cache.
const DefaultCacheSize = compiler.DefaultCacheSize

// CompileCache is the content-addressed compile/link cache (re-exported
// so callers can share one across tuners via Options.SharedCache).
type CompileCache = compiler.CompileCache

// NewCompileCache builds a cache holding up to the given number of
// entries (0 selects DefaultCacheSize).
func NewCompileCache(entries int) *CompileCache {
	return compiler.NewCompileCache(entries)
}

// FaultTally summarizes resilience activity over a tuning run.
type FaultTally struct {
	// CompileFailures, RunCrashes, Timeouts and Flakes count evaluations
	// lost to each injected fault class (Flakes counts individual flaked
	// attempts; retried evaluations may still succeed).
	CompileFailures, RunCrashes, Timeouts, Flakes int64
	// Retries counts retry attempts spent on transient failures.
	Retries int64
	// WastedCompiles counts module compilations discarded by ICEs.
	WastedCompiles int64
	// LostHours is the simulated wall-clock lost to faults (wasted runs,
	// timeout budgets, retry backoff) — a subset of SimulatedHours.
	LostHours float64
	// Quarantined is the number of poison CVs barred from re-sampling.
	Quarantined int
	// DegradedModules is the number of modules that fell back to the
	// baseline CV because their measurements kept failing.
	DegradedModules int
}

// Evaluation is one assembled executable's noise-free behaviour on an
// input.
type Evaluation struct {
	// Total is the end-to-end time in seconds.
	Total float64
	// PerLoop are the per-hot-loop times, indexed like Program.Loops.
	PerLoop []float64
	// Notes are the per-loop optimization decisions in the paper's
	// Table 3 notation (S / 128 / 256, unrollN, IS, IO, RS, ...).
	Notes []string
}

// Evaluate compiles the report's program with per-module CVs (e.g.
// Report.Best.ModuleCVs, or any modification of them) and measures it
// noise-free on an arbitrary input — the §4.3 generalization protocol.
func (r *Report) Evaluate(cvs []CV, in Input) (*Evaluation, error) {
	if r.sess == nil {
		return nil, ErrServed
	}
	exe, err := r.sess.Toolchain.Compile(r.sess.Prog, r.sess.Part, cvs, r.sess.Machine)
	if err != nil {
		return nil, err
	}
	res := exec.Run(exe, r.sess.Machine, in, exec.Options{})
	ev := &Evaluation{Total: res.Total, PerLoop: res.PerLoop}
	for li := range exe.PerLoop {
		ev.Notes = append(ev.Notes, exe.PerLoop[li].Notes())
	}
	return ev, nil
}

// EvaluateBaseline measures the O3 baseline on an arbitrary input.
func (r *Report) EvaluateBaseline(in Input) (*Evaluation, error) {
	if r.sess == nil {
		return nil, ErrServed
	}
	return r.Evaluate(uniform(r.sess.Part, r.sess.Toolchain.Space.Baseline()), in)
}

func uniform(part ir.Partition, cv CV) []CV {
	out := make([]CV, len(part.Modules))
	for i := range out {
		out[i] = cv
	}
	return out
}

// session builds the outlined core session for prog on in, wiring the
// resilience policy and (when configured) the checkpointer. warm is the
// warm-start seed set (nil except for warm-started Tune runs).
func (t *Tuner) session(prog *Program, in Input, warm [][]CV) (*core.Session, outline.Result, error) {
	if t.err != nil {
		return nil, outline.Result{}, t.err
	}
	res, err := outline.AutoOutline(t.tc, prog, t.opts.Machine, in, t.opts.HotThreshold, 1, nil)
	if err != nil {
		return nil, outline.Result{}, err
	}
	sess, err := core.NewSession(t.tc, prog, res.Partition, t.opts.Machine, in, core.Config{
		Samples:           t.opts.Samples,
		TopX:              t.opts.TopX,
		Technique:         t.opts.Technique,
		WarmSeeds:         warm,
		Seed:              t.opts.Seed,
		Workers:           t.opts.Workers,
		Noisy:             *t.opts.Noisy,
		Faults:            t.opts.Faults,
		MaxRetries:        t.opts.MaxRetries,
		BackoffSeconds:    t.opts.BackoffSeconds,
		BackoffCapSeconds: t.opts.BackoffCapSeconds,
		TimeoutBudget:     t.opts.TimeoutBudget,
		KillAfterEvals:    t.opts.KillAfterEvals,
		Gate:              t.opts.Gate,
		Remote:            t.opts.Evaluator,
		Unpooled:          t.opts.Unpooled,
	})
	if err != nil {
		return nil, outline.Result{}, err
	}
	if path := t.opts.Checkpoint; path != "" || t.opts.Resume != "" {
		if path == "" {
			path = t.opts.Resume
		}
		ckpt := core.NewCheckpointer(path, t.opts.CheckpointEvery)
		if t.opts.Resume != "" {
			ck, err := core.LoadCheckpointFile(t.opts.Resume)
			switch {
			case os.IsNotExist(err):
				// Nothing persisted yet: start fresh, checkpointing to
				// the same path.
			case err != nil:
				return nil, outline.Result{}, err
			default:
				if err := ckpt.Resume(ck); err != nil {
					return nil, outline.Result{}, err
				}
			}
		}
		if err := sess.AttachCheckpointer(ckpt); err != nil {
			return nil, outline.Result{}, err
		}
	}
	// Metrics are always on (the registry is cheap and Report.Metrics is
	// always populated); tracing only when the caller supplied a recorder.
	// Attached after the checkpointer so the quarantine gauge reflects any
	// restored state.
	sess.AttachMetrics(metrics.NewRegistry())
	sess.AttachTrace(t.opts.Trace)
	return sess, res, nil
}

// startProgress launches the periodic progress reporter when
// Options.Progress is set. expected is the nominal evaluation budget of
// the protocol about to run (an upper bound for early-stopped searches).
// The returned stop function ends the reporter and emits a final line;
// it is safe to call exactly once.
func (t *Tuner) startProgress(sess *core.Session, expected int64) func() {
	w := t.opts.Progress
	if w == nil {
		return func() {}
	}
	every := t.opts.ProgressEvery
	if every <= 0 {
		every = 5 * time.Second
	}
	start := time.Now()
	emit := func(final bool) {
		n := sess.CompletedEvals()
		pct := 0.0
		if expected > 0 {
			pct = 100 * float64(n) / float64(expected)
			if pct > 100 {
				pct = 100
			}
		}
		line := fmt.Sprintf("funcytuner: %d/%d evals (%.1f%%), %.1f simulated hours",
			n, expected, pct, sess.Cost.SimulatedHours())
		if !final && n > 0 && n < expected {
			if rate := float64(n) / time.Since(start).Seconds(); rate > 0 {
				eta := time.Duration(float64(expected-n) / rate * float64(time.Second))
				line += fmt.Sprintf(", eta %s", eta.Round(time.Second))
			}
		}
		if final {
			line += ", done"
		}
		fmt.Fprintln(w, line)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				emit(false)
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
		emit(true)
	}
}

// EvalService executes evaluation claims for a tuning run of prog on in —
// the worker half of a distributed fleet. It holds a session configured
// identically to the coordinator's (same seed, budgets, fault rates and
// outlined partition), so every claim's outcome is bit-identical to what
// the coordinator would have measured locally.
type EvalService struct {
	sess *core.Session
}

// EvalService builds the claim-execution service for prog on in. The
// tuner must be local (Options.Evaluator unset): a claim executed by a
// coordinator would recurse into its own fleet.
func (t *Tuner) EvalService(prog *Program, in Input) (*EvalService, error) {
	if t.err != nil {
		return nil, t.err
	}
	if t.opts.Evaluator != nil {
		return nil, fmt.Errorf("funcytuner: EvalService requires a local tuner (Options.Evaluator is set)")
	}
	sess, _, err := t.session(prog, in, nil)
	if err != nil {
		return nil, err
	}
	return &EvalService{sess: sess}, nil
}

// Evaluate executes one claim. Claims for distinct (phase, sample) pairs
// may run concurrently; re-executing a claim returns a bit-identical
// outcome, which is what makes lease-expiry re-dispatch safe.
func (s *EvalService) Evaluate(ctx context.Context, req EvalRequest) (EvalOutcome, error) {
	return s.sess.EvaluateClaim(ctx, req)
}

// Space returns the flag space claims' CVs must come from — the decoder
// for wire-format CV values.
func (s *EvalService) Space() *Space { return s.sess.Toolchain.Space }

// Modules returns the outlined partition's module count J: the CV count
// a non-collect claim must carry.
func (s *EvalService) Modules() int { return len(s.sess.Part.Modules) }

// Tune runs the FuncyTuner pipeline (collection + CFR) on prog with in.
func (t *Tuner) Tune(prog *Program, in Input) (*Report, error) {
	return t.TuneContext(context.Background(), prog, in)
}

// TuneContext is Tune under a context. Cancelling ctx stops the run at
// the next evaluation boundary: in-flight evaluations complete and are
// checkpointed, the checkpoint (when Options.Checkpoint is set) is
// flushed, and the returned error satisfies errors.Is(err, ctx.Err()).
// Cancellation is observationally equivalent to KillAfterEvals at the
// same evaluation index — resuming the checkpoint yields a Report
// bit-identical to an uninterrupted run.
func (t *Tuner) TuneContext(ctx context.Context, prog *Program, in Input) (*Report, error) {
	warm, digest, err := t.warmSeeds(prog)
	if err != nil {
		return nil, err
	}
	if rep, ok := t.serveFromRepo(modeTune, prog, in, StopRule{}, digest); ok {
		return rep, nil
	}
	sess, out, err := t.session(prog, in, warm)
	if err != nil {
		return nil, err
	}
	stop := t.startProgress(sess, 2*int64(t.opts.Samples))
	defer stop()
	col, err := sess.Collect(ctx)
	if err != nil {
		return nil, err
	}
	res, err := sess.Search(ctx, col)
	if err != nil {
		return nil, err
	}
	rep := t.report(sess, out, map[string]*Result{res.Algorithm: res})
	t.storeInRepo(modeTune, prog, in, StopRule{}, rep, digest)
	return rep, nil
}

// StopRule configures early stopping for TuneAdaptive.
type StopRule = core.StopRule

// DefaultStopRule returns the convergence-study defaults (floor 50
// evaluations, patience 150).
func DefaultStopRule() StopRule { return core.DefaultStopRule() }

// TuneAdaptive runs the pipeline with early-stopped CFR: identical
// pruning and sampling, but the search halts once `rule` fires — the
// §4.3 observation that CFR converges in tens-to-hundreds of evaluations,
// turned into a budget policy. The collection phase still uses the full
// sample budget (its cost is what the per-loop guidance buys).
func (t *Tuner) TuneAdaptive(prog *Program, in Input, rule StopRule) (*Report, error) {
	return t.TuneAdaptiveContext(context.Background(), prog, in, rule)
}

// TuneAdaptiveContext is TuneAdaptive under a context, with the same
// cancellation semantics as TuneContext.
func (t *Tuner) TuneAdaptiveContext(ctx context.Context, prog *Program, in Input, rule StopRule) (*Report, error) {
	if err := t.requireCFR("TuneAdaptive"); err != nil {
		return nil, err
	}
	if rep, ok := t.serveFromRepo(modeAdaptive, prog, in, rule, 0); ok {
		return rep, nil
	}
	sess, out, err := t.session(prog, in, nil)
	if err != nil {
		return nil, err
	}
	maxEvals := int64(rule.MaxEvaluations)
	if maxEvals <= 0 || maxEvals > int64(t.opts.Samples) {
		maxEvals = int64(t.opts.Samples)
	}
	stop := t.startProgress(sess, int64(t.opts.Samples)+maxEvals)
	defer stop()
	col, err := sess.Collect(ctx)
	if err != nil {
		return nil, err
	}
	cfr, err := sess.CFRAdaptive(ctx, col, rule)
	if err != nil {
		return nil, err
	}
	rep := t.report(sess, out, map[string]*Result{"CFR": cfr})
	rep.Best = cfr
	t.storeInRepo(modeAdaptive, prog, in, rule, rep, 0)
	return rep, nil
}

// Compare runs the full §4.1 protocol — Random, FR, G (both variants) and
// CFR — so the algorithms can be compared on prog.
func (t *Tuner) Compare(prog *Program, in Input) (*Report, error) {
	return t.CompareContext(context.Background(), prog, in)
}

// CompareContext is Compare under a context, with the same cancellation
// semantics as TuneContext.
func (t *Tuner) CompareContext(ctx context.Context, prog *Program, in Input) (*Report, error) {
	if err := t.requireCFR("Compare"); err != nil {
		return nil, err
	}
	if rep, ok := t.serveFromRepo(modeCompare, prog, in, StopRule{}, 0); ok {
		return rep, nil
	}
	sess, out, err := t.session(prog, in, nil)
	if err != nil {
		return nil, err
	}
	// Random K + collection K + FR K + greedy 1 + CFR K.
	stop := t.startProgress(sess, 4*int64(t.opts.Samples)+1)
	defer stop()
	all, err := sess.RunAll(ctx)
	if err != nil {
		return nil, err
	}
	rep := t.report(sess, out, all)
	t.storeInRepo(modeCompare, prog, in, StopRule{}, rep, 0)
	return rep, nil
}

// requireCFR rejects protocols that are defined in terms of CFR when a
// different search technique is selected.
func (t *Tuner) requireCFR(protocol string) error {
	if tag := core.TechniqueTag(t.opts.Technique); tag != "" {
		return fmt.Errorf("funcytuner: %s supports only the default CFR technique, got %q", protocol, t.opts.Technique)
	}
	return nil
}

// bestResult picks the search result out of an algorithm map: the
// technique that spent the post-collection budget, whichever ran.
func bestResult(all map[string]*Result) *Result {
	for _, name := range []string{"CFR", "BO", "GA"} {
		if r := all[name]; r != nil {
			return r
		}
	}
	return nil
}

func (t *Tuner) report(sess *core.Session, out outline.Result, all map[string]*Result) *Report {
	degraded := 0
	best := bestResult(all)
	if best != nil {
		degraded = len(best.DegradedModules)
	}
	return &Report{
		Best:           best,
		All:            all,
		Profile:        out.Profile,
		HotLoops:       out.Hot,
		Modules:        len(out.Partition.Modules),
		Compiles:       sess.Cost.Compiles(),
		Runs:           sess.Cost.Runs(),
		SimulatedHours: sess.Cost.SimulatedHours(),
		Faults: FaultTally{
			CompileFailures: sess.Cost.CompileFailures(),
			RunCrashes:      sess.Cost.RunCrashes(),
			Timeouts:        sess.Cost.Timeouts(),
			Flakes:          sess.Cost.Flakes(),
			Retries:         sess.Cost.Retries(),
			WastedCompiles:  sess.Cost.WastedCompiles(),
			LostHours:       sess.Cost.FaultHours(),
			Quarantined:     len(sess.Quarantined()),
			DegradedModules: degraded,
		},
		Cache:   sess.CacheStats(),
		Metrics: sess.MetricsSnapshot(),
		sess:    sess,
	}
}

// Fingerprint hashes the deterministic content of the report: every
// algorithm's result (chosen CVs, measured/true/baseline times, traces,
// degraded modules), the outlining profile, and the simulated cost and
// fault tallies. It deliberately excludes Cache and Metrics — cache and
// instrument counters depend on scheduling and configuration, not on
// the tuning outcome. For one
// seed, Fingerprint is invariant across worker counts, cache on/off, and
// checkpoint kill/resume; the robustness tests and the CI benchmark
// smoke job enforce exactly that.
func (r *Report) Fingerprint() uint64 {
	// Streamed through xrand.Hasher, which is Combine by construction:
	// the digest is bit-identical to hashing a materialized value slice,
	// without allocating one (a paper-scale report folds tens of
	// thousands of values).
	var h xrand.Hasher
	add := func(vs ...uint64) {
		for _, v := range vs {
			h.Add(v)
		}
	}
	addF := func(fs ...float64) {
		for _, f := range fs {
			h.Add(math.Float64bits(f))
		}
	}
	names := make([]string, 0, len(r.All))
	for name := range r.All {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res := r.All[name]
		add(xrand.HashString(name), xrand.HashString(res.Algorithm), uint64(res.Evaluations))
		for _, cv := range res.ModuleCVs {
			add(cv.Key())
		}
		addF(res.BestMeasured, res.TrueTime, res.Baseline, res.Speedup)
		for _, v := range res.Trace {
			addF(v)
		}
		for _, mi := range res.DegradedModules {
			add(uint64(mi))
		}
	}
	addF(r.Profile.Total, r.Profile.TotalStd, r.Profile.NonLoop)
	for _, v := range r.Profile.PerLoop {
		addF(v)
	}
	for _, li := range r.HotLoops {
		add(uint64(li))
	}
	add(uint64(r.Modules), uint64(r.Compiles), uint64(r.Runs))
	addF(r.SimulatedHours)
	ft := r.Faults
	add(uint64(ft.CompileFailures), uint64(ft.RunCrashes), uint64(ft.Timeouts),
		uint64(ft.Flakes), uint64(ft.Retries), uint64(ft.WastedCompiles),
		uint64(ft.Quarantined), uint64(ft.DegradedModules))
	addF(ft.LostHours)
	return h.Sum()
}

// ProfileBaseline profiles prog's O3 baseline on m with in, using runs
// instrumented executions (Caliper overhead included). Measurement noise
// is applied with a deterministic seed, so repeated runs show the real
// run-to-run standard deviation while the profile itself reproduces
// exactly.
func ProfileBaseline(prog *Program, m *Machine, in Input, runs int) (Profile, error) {
	tc := compiler.NewToolchain(flagspec.ICC())
	exe, err := tc.CompileUniform(prog, ir.WholeProgram(prog), flagspec.ICC().Baseline(), m)
	if err != nil {
		return Profile{}, err
	}
	rng := xrand.NewFromString("funcytuner/profile/" + prog.Name + "/" + m.Name + "/" + in.Name)
	return caliper.Collect(exe, m, in, runs, rng), nil
}

// Validate checks a user-defined program model (see ir.Program's field
// documentation for the invariants).
func Validate(prog *Program) error {
	if prog == nil {
		return fmt.Errorf("funcytuner: nil program")
	}
	return prog.Validate()
}
