package funcytuner

// Warm-starting: seed a technique's initial design/population with the
// best assemblies of related prior runs already in the results
// repository. The scan is a pure function of the repository's contents
// at the time it runs — the chosen seed set is digested into the
// repository key, so a warm run is reproducible (and SkipExist-servable)
// exactly when the repository would yield the same seeds again.

import (
	"encoding/json"
	"sort"

	"funcytuner/internal/xrand"
)

// maxWarmSeeds bounds how many prior-run assemblies seed a technique.
const maxWarmSeeds = 4

// warmSeeds scans the attached results repository for prior runs related
// to prog and returns up to maxWarmSeeds winning assemblies (nearest
// first) plus a digest of the chosen set. It returns (nil, 0, nil) when
// warm-starting is off; option errors surface later through session().
func (t *Tuner) warmSeeds(prog *Program) ([][]CV, uint64, error) {
	if !t.opts.WarmStart || t.err != nil || t.repo == nil || prog == nil {
		return nil, 0, nil
	}
	type candidate struct {
		key   uint64
		score int
		flags []string
	}
	var cands []candidate
	for _, key := range t.repo.Keys() {
		body, ok := t.repo.Get(key)
		if !ok {
			continue
		}
		var b repoBody
		if err := json.Unmarshal(body, &b); err != nil {
			continue
		}
		if b.Flavor != t.opts.Space.Flavor.String() {
			continue
		}
		best := bestRepoResult(b.Results)
		if best == nil || len(best.ModuleFlags) == 0 {
			continue
		}
		score := 0
		if b.Machine == t.opts.Machine.Name {
			score += 2
		}
		if b.Program == prog.Name {
			score++
		}
		cands = append(cands, candidate{key: key, score: score, flags: best.ModuleFlags})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].key < cands[j].key
	})
	if len(cands) > maxWarmSeeds {
		cands = cands[:maxWarmSeeds]
	}
	var h xrand.Hasher
	h.Add(xrand.HashString("funcytuner/warm-start"))
	seeds := make([][]CV, 0, len(cands))
	for _, c := range cands {
		assembly := make([]CV, 0, len(c.flags))
		for _, flags := range c.flags {
			cv, err := t.opts.Space.Parse(flags)
			if err != nil {
				assembly = nil // stored under a different space revision
				break
			}
			assembly = append(assembly, cv)
		}
		if assembly == nil {
			continue
		}
		seeds = append(seeds, assembly)
		h.Add(uint64(len(assembly)))
		for _, cv := range assembly {
			h.Add(cv.Key())
		}
	}
	return seeds, h.Sum(), nil
}

// bestRepoResult is bestResult over the wire-form result map.
func bestRepoResult(results map[string]*repoResult) *repoResult {
	for _, name := range []string{"CFR", "BO", "GA"} {
		if r := results[name]; r != nil {
			return r
		}
	}
	return nil
}
