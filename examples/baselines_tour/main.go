// Baselines tour: run every tuner the paper compares (§4.2, Fig. 1) on
// one benchmark through the public API — FuncyTuner CFR against
// OpenTuner, the three COBAYN models, Intel-style PGO, and Combined
// Elimination — and explain CFR's win with per-module attribution and
// critical flags (§4.4.1).
//
//	go run ./examples/baselines_tour
package main

import (
	"fmt"
	"log"
	"sort"

	"funcytuner"
)

func main() {
	log.SetFlags(0)
	machine, err := funcytuner.MachineByName("broadwell")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := funcytuner.Benchmark(funcytuner.AMG)
	if err != nil {
		log.Fatal(err)
	}
	in := funcytuner.TuningInput(prog.Name, machine)
	tuner := funcytuner.NewTuner(funcytuner.Options{Machine: machine, Seed: "baselines-tour"})

	fmt.Printf("tuning %s on %s (%s)\n\n", prog.Name, machine.Name, in)
	speedups := map[string]float64{}

	// FuncyTuner CFR.
	rep, err := tuner.Tune(prog, in)
	if err != nil {
		log.Fatal(err)
	}
	speedups["FuncyTuner CFR"] = rep.Best.Speedup

	// OpenTuner ensemble.
	if res, err := tuner.TuneOpenTuner(prog, in); err != nil {
		log.Fatal(err)
	} else {
		speedups["OpenTuner"] = res.Speedup
	}

	// COBAYN: train once on the cBench-like corpus, use all three models.
	model, err := tuner.TrainCOBAYN(16)
	if err != nil {
		log.Fatal(err)
	}
	for _, kind := range []funcytuner.COBAYNKind{
		funcytuner.COBAYNStatic, funcytuner.COBAYNDynamic, funcytuner.COBAYNHybrid,
	} {
		res, err := tuner.TuneCOBAYN(model.WithKind(kind), prog, in)
		if err != nil {
			log.Fatal(err)
		}
		speedups[res.Name] = res.Speedup
	}

	// Intel PGO.
	if res, err := tuner.TunePGO(prog, in); err != nil {
		log.Fatal(err)
	} else if res.Failed {
		fmt.Printf("PGO: %s\n", res.Note)
	} else {
		speedups["PGO"] = res.Speedup
	}

	// Combined Elimination (Fig. 1).
	if res, err := tuner.TuneCE(prog, in); err != nil {
		log.Fatal(err)
	} else {
		speedups["Combined Elimination"] = res.Speedup
	}

	names := make([]string, 0, len(speedups))
	for n := range speedups {
		names = append(names, n)
	}
	sort.Slice(names, func(a, b int) bool { return speedups[names[a]] > speedups[names[b]] })
	fmt.Println("speedup over -O3:")
	for _, n := range names {
		fmt.Printf("  %-22s %6.3f\n", n, speedups[n])
	}

	// Why does CFR win? Leave-one-out attribution per module.
	attr, err := rep.Attribution()
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(attr, func(a, b int) bool { return attr[a].Marginal > attr[b].Marginal })
	fmt.Println("\nCFR per-module attribution (slowdown if the module reverts to O3):")
	for _, a := range attr[:5] {
		fmt.Printf("  %-14s %6.3fx\n", a.Module, a.Marginal)
	}

	// Critical flags of the most load-bearing module (§4.4.1).
	top := attr[0].Module
	for mi := 0; mi < rep.Modules; mi++ {
		if rep.ModuleName(mi) != top {
			continue
		}
		flags, err := rep.CriticalFlags(mi)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncritical flags of %s after greedy elimination:\n  %v\n", top, flags)
	}
}
