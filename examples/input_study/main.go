// Input study: the §4.3 generalization protocol on the public API — tune
// swim and CloverLeaf on their Table 2 tuning inputs, then evaluate the
// chosen configurations on different problem sizes and time-step counts.
// Shows both the headline result (benefits generalize across inputs) and
// the one counter-example (swim's tiny "test" input flips the tuned
// streaming/prefetch trade-offs).
//
//	go run ./examples/input_study
package main

import (
	"fmt"
	"log"

	"funcytuner"
)

func main() {
	log.SetFlags(0)
	machine, err := funcytuner.MachineByName("broadwell")
	if err != nil {
		log.Fatal(err)
	}

	// --- CloverLeaf: scale the time-steps (Fig. 8) ---
	prog, err := funcytuner.Benchmark(funcytuner.CloverLeaf)
	if err != nil {
		log.Fatal(err)
	}
	train := funcytuner.TuningInput(prog.Name, machine)
	tuner := funcytuner.NewTuner(funcytuner.Options{Machine: machine, Seed: "input-study"})
	rep, err := tuner.Tune(prog, train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CloverLeaf tuned on %s: speedup %.3f\n", train, rep.Best.Speedup)
	fmt.Println("generalization across time-steps (Fig. 8 protocol):")
	for _, steps := range []int{100, 200, 400, 800} {
		in := funcytuner.Input{Name: "steps", Size: train.Size, Steps: steps}
		tuned, err := rep.Evaluate(rep.Best.ModuleCVs, in)
		if err != nil {
			log.Fatal(err)
		}
		base, err := rep.EvaluateBaseline(in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  steps=%4d  speedup %.3f\n", steps, base.Total/tuned.Total)
	}

	// --- swim: shrink and grow the problem size (§4.3) ---
	prog, err = funcytuner.Benchmark(funcytuner.Swim)
	if err != nil {
		log.Fatal(err)
	}
	train = funcytuner.TuningInput(prog.Name, machine)
	rep, err = tuner.Tune(prog, train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nswim tuned on %s: speedup %.3f\n", train, rep.Best.Speedup)
	fmt.Println("generalization across problem sizes:")
	for _, in := range []funcytuner.Input{
		{Name: "test (tiny!)", Size: 12, Steps: 50},
		{Name: "train", Size: 100, Steps: 50},
		{Name: "ref", Size: 160, Steps: 50},
	} {
		tuned, err := rep.Evaluate(rep.Best.ModuleCVs, in)
		if err != nil {
			log.Fatal(err)
		}
		base, err := rep.EvaluateBaseline(in)
		if err != nil {
			log.Fatal(err)
		}
		perStep := base.Total / float64(in.Steps)
		fmt.Printf("  %-14s speedup %.3f   (O3 per-step %.4fs)\n",
			in.Name, base.Total/tuned.Total, perStep)
	}
	fmt.Println("\nswim's \"test\" grids drop into cache: the streaming-store and")
	fmt.Println("prefetch choices tuned for bandwidth-bound grids stop paying —")
	fmt.Println("the one case (§4.3) where the tuned profile mis-generalizes.")
}
