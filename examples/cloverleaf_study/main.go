// CloverLeaf deep dive: reproduces the paper's §4.4 case study on the
// public API — the four search algorithms side by side, per-loop speedups
// for the five famous kernels (Fig. 9), and their optimization decisions
// (Table 3), demonstrating why greedy per-module composition fails while
// Caliper-guided focused search succeeds.
//
//	go run ./examples/cloverleaf_study
package main

import (
	"fmt"
	"log"

	"funcytuner"
)

var kernels = []string{"dt", "cell3", "cell7", "mom9", "acc"}

func main() {
	log.SetFlags(0)

	prog, err := funcytuner.Benchmark(funcytuner.CloverLeaf)
	if err != nil {
		log.Fatal(err)
	}
	machine, err := funcytuner.MachineByName("broadwell")
	if err != nil {
		log.Fatal(err)
	}
	input := funcytuner.TuningInput(prog.Name, machine)
	tuner := funcytuner.NewTuner(funcytuner.Options{Machine: machine, Seed: "cloverleaf-study"})

	rep, err := tuner.Compare(prog, input)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== algorithm comparison (speedup over O3) ==")
	for _, alg := range []string{"Random", "FR", "G.realized", "CFR", "G.Independent"} {
		fmt.Printf("  %-14s %6.3f\n", alg, rep.All[alg].Speedup)
	}
	fmt.Printf("\nG.realized vs G.Independent gap: %.3f — the inter-module\n",
		rep.All["G.Independent"].Speedup-rep.All["G.realized"].Speedup)
	fmt.Println("interference that invalidates the independence assumption (§3.4).")

	base, err := rep.EvaluateBaseline(input)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== Fig. 9: per-loop speedups of the top-5 kernels ==")
	fmt.Printf("%-8s", "kernel")
	algs := []string{"Random", "G.realized", "CFR"}
	for _, alg := range algs {
		fmt.Printf("%12s", alg)
	}
	fmt.Println()
	evals := map[string]*funcytuner.Evaluation{}
	for _, alg := range algs {
		ev, err := rep.Evaluate(rep.All[alg].ModuleCVs, input)
		if err != nil {
			log.Fatal(err)
		}
		evals[alg] = ev
	}
	for _, k := range kernels {
		li := prog.LoopIndex(k)
		fmt.Printf("%-8s", k)
		for _, alg := range algs {
			fmt.Printf("%12.3f", base.PerLoop[li]/evals[alg].PerLoop[li])
		}
		fmt.Println()
	}

	fmt.Println("\n== Table 3: optimization decisions ==")
	fmt.Printf("%-12s", "algorithm")
	for _, k := range kernels {
		fmt.Printf("%-22s", k)
	}
	fmt.Println()
	printRow := func(name string, ev *funcytuner.Evaluation) {
		fmt.Printf("%-12s", name)
		for _, k := range kernels {
			fmt.Printf("%-22s", ev.Notes[prog.LoopIndex(k)])
		}
		fmt.Println()
	}
	printRow("O3", base)
	for _, alg := range algs {
		printRow(alg, evals[alg])
	}

	fmt.Println("\nObservations to look for (cf. §4.4.2):")
	fmt.Println(" 1. vectorization is not always profitable: the divergent kernels")
	fmt.Println("    (dt, cell3, cell7) run fastest as scalar code;")
	fmt.Println(" 2. acc hides a large 256-bit SIMD win behind pointer aliasing;")
	fmt.Println(" 3. G.realized's decisions differ from the per-module bests it chose")
	fmt.Println("    (IPO* marks link-time overrides) — greedy composition backfires.")
}
