// Quickstart: tune CloverLeaf on the Broadwell model with FuncyTuner's
// Caliper-guided random search and print what the tuner found.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"funcytuner"
)

func main() {
	log.SetFlags(0)

	// Pick a benchmark (Table 1) and a platform (Table 2).
	prog, err := funcytuner.Benchmark(funcytuner.CloverLeaf)
	if err != nil {
		log.Fatal(err)
	}
	machine, err := funcytuner.MachineByName("broadwell")
	if err != nil {
		log.Fatal(err)
	}
	input := funcytuner.TuningInput(prog.Name, machine)

	// A tuner with the paper's settings: K = 1000 pre-sampled CVs,
	// per-module pruning to the top 50.
	tuner := funcytuner.NewTuner(funcytuner.Options{
		Machine: machine,
		Seed:    "quickstart",
	})

	fmt.Printf("tuning %s (%s, %d hot loops) on %s, input %s\n\n",
		prog.Name, prog.Domain, prog.NumLoops(), machine, input)

	rep, err := tuner.Tune(prog, input)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("O3 baseline:   %6.2f s\n", rep.Best.Baseline)
	fmt.Printf("tuned (CFR):   %6.2f s\n", rep.Best.TrueTime)
	fmt.Printf("speedup:       %6.3f x\n\n", rep.Best.Speedup)

	fmt.Printf("the profiler outlined %d hot loops into %d compilation modules;\n",
		len(rep.HotLoops), rep.Modules)
	fmt.Printf("hottest loop: %q at %.1f%% of runtime\n\n",
		prog.Loops[rep.HotLoops[0]].Name, 100*rep.Profile.Share(rep.HotLoops[0]))

	// Show how the tuned code differs from O3, per loop.
	tuned, err := rep.Evaluate(rep.Best.ModuleCVs, input)
	if err != nil {
		log.Fatal(err)
	}
	base, err := rep.EvaluateBaseline(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-loop result (speedup, decisions — Table 3 notation):")
	for li := range prog.Loops {
		fmt.Printf("  %-10s %6.3fx   O3: %-24s CFR: %s\n",
			prog.Loops[li].Name,
			base.PerLoop[li]/tuned.PerLoop[li],
			base.Notes[li], tuned.Notes[li])
	}
	fmt.Printf("\ntuning cost: %d runs, %.1f simulated hours\n", rep.Runs, rep.SimulatedHours)
}
