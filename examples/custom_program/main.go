// Custom program: define your own application model — a small
// shallow-atmosphere mini-app with four hot loops of distinct character —
// and tune it on two machines. Demonstrates the Program/Loop schema a
// downstream user fills in for code the suite does not ship.
//
//	go run ./examples/custom_program
package main

import (
	"fmt"
	"log"

	"funcytuner"
	"funcytuner/internal/ir"
)

// miniAtmosphere builds the custom program model. Loop features describe
// code structure, not code text: divergence, stride regularity, working
// sets and dependence depth are what the compiler model optimizes against.
func miniAtmosphere() *funcytuner.Program {
	mk := func(name, file string, f func(l *funcytuner.Loop)) funcytuner.Loop {
		l := funcytuner.Loop{
			Name: name, File: file,
			ID:                 ir.LoopID("miniatmo", name),
			TripCount:          4e8,
			InvocationsPerStep: 1,
			WorkPerIter:        8,
			BytesPerIter:       16,
			FPFraction:         0.9,
			WorkingSetKB:       6000,
			BodySize:           1,
			Parallel:           true,
			ScaleExp:           2, WSScaleExp: 2,
		}
		f(&l)
		return l
	}
	loops := []funcytuner.Loop{
		// A clean streaming advection sweep: bandwidth-bound, loves
		// streaming stores and the right prefetch distance.
		mk("advect", "dynamics.f90", func(l *funcytuner.Loop) {
			l.BytesPerIter = 28
			l.WorkingSetKB = 16000
		}),
		// A branchy micro-physics column: divergent, vector-hostile.
		mk("microphys", "physics.f90", func(l *funcytuner.Loop) {
			l.Divergence = 0.55
			l.FPFraction = 0.7
			l.BodySize = 1.8
		}),
		// A blocked vertical solve with a recurrence.
		mk("vsolve", "dynamics.f90", func(l *funcytuner.Loop) {
			l.DepChain = 0.5
			l.Reuse = 0.6
			l.WorkingSetKB = 9000
		}),
		// A pointer-heavy halo pack hidden behind alias ambiguity.
		mk("halopack", "comm.cc", func(l *funcytuner.Loop) {
			l.AliasAmbiguity = 0.55
			l.StrideIrregular = 0.25
			l.BodySize = 0.5
		}),
	}
	n := len(loops) + 1
	coupling := make([][]float64, n)
	for i := range coupling {
		coupling[i] = make([]float64, n)
	}
	// The two dynamics loops share a translation unit.
	coupling[0][2], coupling[2][0] = 0.6, 0.6

	prog := &funcytuner.Program{
		Name:   "miniatmo",
		Lang:   ir.LangFortran,
		LOC:    3200,
		Domain: "Shallow-atmosphere mini-app",
		Seed:   ir.LoopID("miniatmo", "seed"),
		Loops:  loops,
		NonLoopCode: ir.NonLoop{
			WorkPerStep: 5e8, SetupWork: 1e9, Sensitivity: 0.4,
		},
		Coupling: coupling,
		BaseSize: 1000, BaseSteps: 20,
	}
	return prog
}

func main() {
	log.SetFlags(0)
	prog := miniAtmosphere()
	if err := funcytuner.Validate(prog); err != nil {
		log.Fatalf("program model invalid: %v", err)
	}
	input := funcytuner.Input{Name: "train", Size: 1000, Steps: 20}

	for _, name := range []string{"sandybridge", "broadwell"} {
		machine, err := funcytuner.MachineByName(name)
		if err != nil {
			log.Fatal(err)
		}
		tuner := funcytuner.NewTuner(funcytuner.Options{
			Machine: machine,
			Samples: 600,
			TopX:    40,
			Seed:    "custom-program",
		})
		rep, err := tuner.Tune(prog, input)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", machine)
		fmt.Printf("  O3 %.2fs -> CFR %.2fs, speedup %.3f (J = %d modules)\n",
			rep.Best.Baseline, rep.Best.TrueTime, rep.Best.Speedup, rep.Modules)
		tuned, err := rep.Evaluate(rep.Best.ModuleCVs, input)
		if err != nil {
			log.Fatal(err)
		}
		base, err := rep.EvaluateBaseline(input)
		if err != nil {
			log.Fatal(err)
		}
		for li := range prog.Loops {
			fmt.Printf("  %-10s %6.3fx  O3[%s] -> CFR[%s]\n",
				prog.Loops[li].Name,
				base.PerLoop[li]/tuned.PerLoop[li],
				base.Notes[li], tuned.Notes[li])
		}
		fmt.Println()
	}
}
