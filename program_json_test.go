package funcytuner

import (
	"bytes"
	"strings"
	"testing"
)

const userProgJSON = `{
  "Name": "jsonapp",
  "Domain": "demo",
  "LOC": 700,
  "Loops": [
    {"Name": "a", "File": "k.f90", "TripCount": 1e8, "WorkPerIter": 6,
     "BytesPerIter": 20, "FPFraction": 0.9, "WorkingSetKB": 8000,
     "Parallel": true, "WSScaleExp": 2},
    {"Name": "b", "File": "k.f90", "TripCount": 1e8, "WorkPerIter": 8,
     "BytesPerIter": 8, "FPFraction": 0.7, "Divergence": 0.4,
     "WorkingSetKB": 1000, "Parallel": true, "WSScaleExp": 2}
  ],
  "NonLoopCode": {"WorkPerStep": 5e8, "SetupWork": 5e8, "Sensitivity": 0.3},
  "BaseSize": 1000,
  "BaseSteps": 10
}`

func TestLoadProgramDefaults(t *testing.T) {
	prog, err := LoadProgram(strings.NewReader(userProgJSON))
	if err != nil {
		t.Fatal(err)
	}
	if prog.Seed == 0 {
		t.Error("seed not derived")
	}
	for i := range prog.Loops {
		l := &prog.Loops[i]
		if l.ID == 0 || l.InvocationsPerStep != 1 || l.ScaleExp != 2 || l.BodySize != 1 {
			t.Errorf("loop %s defaults not applied: %+v", l.Name, l)
		}
	}
	// Same-file loops coupled by default; everything lightly to base.
	if prog.Coupling[0][1] != 0.6 || prog.Coupling[1][0] != 0.6 {
		t.Errorf("same-file coupling = %v", prog.Coupling[0][1])
	}
	if prog.Coupling[0][2] != 0.05 {
		t.Errorf("base coupling = %v", prog.Coupling[0][2])
	}
}

func TestLoadProgramIsTunable(t *testing.T) {
	prog, err := LoadProgram(strings.NewReader(userProgJSON))
	if err != nil {
		t.Fatal(err)
	}
	m, _ := MachineByName("broadwell")
	tuner := NewTuner(Options{Machine: m, Samples: 120, TopX: 12, Seed: "json-prog"})
	rep, err := tuner.Tune(prog, Input{Name: "user", Size: prog.BaseSize, Steps: prog.BaseSteps})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best.Speedup < 0.95 || rep.Best.Speedup > 1.5 {
		t.Errorf("implausible speedup %v", rep.Best.Speedup)
	}
}

func TestSaveProgramRoundTrip(t *testing.T) {
	prog, err := LoadProgram(strings.NewReader(userProgJSON))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveProgram(&buf, prog); err != nil {
		t.Fatal(err)
	}
	again, err := LoadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if again.Name != prog.Name || again.NumLoops() != prog.NumLoops() {
		t.Error("round trip changed the program")
	}
	if again.Loops[0].ID != prog.Loops[0].ID {
		t.Error("loop IDs changed across round trip")
	}
}

func TestLoadProgramRejectsInvalid(t *testing.T) {
	cases := []string{
		`not json`,
		`{"Name":"x"}`, // no loops
		`{"Name":"x","BaseSize":100,"Loops":[{"Name":"a","TripCount":1,` +
			`"WorkPerIter":1,"Divergence":7,"Parallel":true}]}`, // feature out of range
	}
	for _, c := range cases {
		if _, err := LoadProgram(strings.NewReader(c)); err == nil {
			t.Errorf("invalid program accepted: %.40s", c)
		}
	}
	if err := SaveProgram(&bytes.Buffer{}, nil); err == nil {
		t.Error("SaveProgram(nil) accepted")
	}
}
