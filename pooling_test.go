package funcytuner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"funcytuner/internal/trace"
)

// tuneTraced runs Tune with a recorder attached and returns both the
// Report and the canonical trace JSONL bytes, so one run feeds both the
// fingerprint and the byte-equality comparisons.
func tuneTraced(t *testing.T, opts Options, prog *Program, in Input) (*Report, []byte, *trace.Trace) {
	t.Helper()
	rec := NewTraceRecorder()
	opts.Trace = rec
	rep, err := NewTuner(opts).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	canon := rec.Snapshot().Canonical()
	var buf bytes.Buffer
	if err := canon.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return rep, buf.Bytes(), canon
}

// Every allocation-reuse fast path (scratch pools, trace batch reuse,
// run-profile memoization, fused link/executable allocation) must be
// invisible: a pooled, cached, parallel run's Report fingerprint AND its
// canonical trace bytes must equal those of an Unpooled, cache-off,
// single-worker run of the same seed — with and without fault
// injection. This is the reference test the allocation diet answers to;
// it runs under -race in CI so pool reuse across workers is also probed
// for data races.
func TestUnpooledBitIdenticalAcrossWorkersAndFaults(t *testing.T) {
	m, _ := MachineByName("broadwell")
	prog, err := Benchmark(CloverLeaf)
	if err != nil {
		t.Fatal(err)
	}
	in := TuningInput(CloverLeaf, m)
	for _, rates := range []FaultRates{{}, DefaultFaultRates()} {
		faulty := rates != (FaultRates{})
		ref := Options{
			Machine: m, Samples: 30, TopX: 6, Seed: "pooling-identity",
			Faults: rates, Workers: 1, Unpooled: true, CacheSize: -1,
		}
		want, wantBytes, wantTrace := tuneTraced(t, ref, prog, in)
		if len(wantBytes) == 0 {
			t.Fatal("reference run produced an empty canonical trace")
		}
		wantFP := want.Fingerprint()

		variants := []struct {
			name string
			mut  func(*Options)
		}{
			{"pooled-workers-1", func(o *Options) { o.Workers = 1 }},
			{"pooled-workers-4", func(o *Options) { o.Workers = 4 }},
			{"pooled-workers-gomaxprocs", func(o *Options) { o.Workers = 0 }},
			{"pooled-shared-cache", func(o *Options) {
				o.Workers = 4
				o.SharedCache = NewCompileCache(0)
			}},
		}
		for _, v := range variants {
			opts := ref
			opts.Unpooled = false
			opts.CacheSize = 0 // default-size cache
			v.mut(&opts)
			got, gotBytes, gotTrace := tuneTraced(t, opts, prog, in)
			if got.Fingerprint() != wantFP {
				t.Errorf("faults=%v %s: fingerprint differs from unpooled reference", faulty, v.name)
			}
			if !bytes.Equal(gotBytes, wantBytes) {
				t.Errorf("faults=%v %s: canonical trace diverged: %s",
					faulty, v.name, trace.Diff(wantTrace, gotTrace))
			}
			if got.Compiles != want.Compiles || got.Runs != want.Runs {
				t.Errorf("faults=%v %s: simulated cost (%d, %d) != reference (%d, %d)",
					faulty, v.name, got.Compiles, got.Runs, want.Compiles, want.Runs)
			}
			if got.Faults != want.Faults {
				t.Errorf("faults=%v %s: fault tally %+v != reference %+v",
					faulty, v.name, got.Faults, want.Faults)
			}
		}
	}
}

// Pooling must also compose with the interruption machinery: a pooled,
// cached run cancelled mid-flight (or killed by the simulated node
// failure) and resumed from its checkpoint reports a fingerprint
// bit-identical to an Unpooled, cache-off, uninterrupted run. Scratch
// reuse cannot leak state across the checkpoint boundary.
func TestUnpooledCancelKillResumeEquality(t *testing.T) {
	m, _ := MachineByName("sandybridge")
	prog, err := Benchmark(Swim)
	if err != nil {
		t.Fatal(err)
	}
	in := TuningInput(Swim, m)
	ref := Options{
		Machine: m, Samples: 40, TopX: 8, Seed: "pooling-resume",
		Faults: DefaultFaultRates(), Workers: 1, CheckpointEvery: 1,
		Unpooled: true, CacheSize: -1,
	}
	want, err := NewTuner(ref).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	wantFP := want.Fingerprint()

	pooled := ref
	pooled.Unpooled = false
	pooled.CacheSize = 0

	// Kill at a deterministic evaluation index, resume, compare.
	killPath := filepath.Join(t.TempDir(), "kill.ckpt")
	kOpts := pooled
	kOpts.Checkpoint = killPath
	kOpts.KillAfterEvals = 25
	if _, err := NewTuner(kOpts).Tune(prog, in); !errors.Is(err, ErrKilled) {
		t.Fatalf("expected ErrKilled, got %v", err)
	}
	rOpts := pooled
	rOpts.Resume = killPath
	got, err := NewTuner(rOpts).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != wantFP {
		t.Fatal("pooled kill+resume fingerprint differs from unpooled uninterrupted run")
	}
	if got.Faults != want.Faults {
		t.Fatalf("pooled kill+resume fault tally %+v != unpooled %+v", got.Faults, want.Faults)
	}

	// Cancel via a gate at deterministic boundaries, resume, compare.
	for _, after := range []int32{3, 47} {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("cancel-%d.ckpt", after))
		ctx, cancel := context.WithCancel(context.Background())
		cOpts := pooled
		cOpts.Checkpoint = path
		cOpts.Gate = &cancelAfterGate{cancel: cancel, after: after}
		_, err := NewTuner(cOpts).TuneContext(ctx, prog, in)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after=%d: error %v does not unwrap to context.Canceled", after, err)
		}
		resume := pooled
		resume.Resume = path
		got, err := NewTuner(resume).Tune(prog, in)
		if err != nil {
			t.Fatalf("after=%d: resume failed: %v", after, err)
		}
		if got.Fingerprint() != wantFP {
			t.Fatalf("after=%d: pooled cancel+resume fingerprint differs from unpooled run", after)
		}
	}
}
