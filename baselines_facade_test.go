package funcytuner

import (
	"bytes"
	"math"
	"testing"
)

func TestBaselineFacades(t *testing.T) {
	m, _ := MachineByName("broadwell")
	tuner := NewTuner(Options{Machine: m, Samples: 150, TopX: 15, Seed: "facade-baselines"})
	prog, _ := Benchmark(Swim)
	in := TuningInput(Swim, m)

	ot, err := tuner.TuneOpenTuner(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	if ot.Name != "OpenTuner" || ot.Speedup <= 0 {
		t.Errorf("OpenTuner result: %+v", ot)
	}

	pgoRes, err := tuner.TunePGO(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	if pgoRes.Failed {
		t.Error("swim PGO should not fail")
	}
	failing, _ := Benchmark(LULESH)
	pgoFail, err := tuner.TunePGO(failing, TuningInput(LULESH, m))
	if err != nil {
		t.Fatal(err)
	}
	if !pgoFail.Failed || pgoFail.Speedup != 1.0 {
		t.Error("LULESH PGO should fail and fall back to O3")
	}

	ceRes, err := tuner.TuneCE(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	if ceRes.Speedup < 0.85 || ceRes.Speedup > 1.12 {
		t.Errorf("CE speedup %.3f outside the Fig. 1 band", ceRes.Speedup)
	}
}

func TestCOBAYNFacadeTrainSaveLoadInfer(t *testing.T) {
	m, _ := MachineByName("broadwell")
	tuner := NewTuner(Options{Machine: m, Samples: 80, TopX: 10, Seed: "facade-cobayn"})
	model, err := tuner.TrainCOBAYN(5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := tuner.LoadCOBAYN(&buf)
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := Benchmark(CloverLeaf)
	in := TuningInput(CloverLeaf, m)
	res, err := tuner.TuneCOBAYN(loaded.WithKind(COBAYNStatic), prog, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "COBAYN-static" || res.Speedup <= 0 {
		t.Errorf("COBAYN result: %+v", res)
	}
	if _, err := tuner.TuneCOBAYN(nil, prog, in); err == nil {
		t.Error("nil model accepted")
	}
}

func TestExplainFacade(t *testing.T) {
	m, _ := MachineByName("broadwell")
	tuner := NewTuner(Options{Machine: m, Samples: 200, TopX: 20, Seed: "facade-explain"})
	prog, _ := Benchmark(CloverLeaf)
	in := TuningInput(CloverLeaf, m)
	rep, err := tuner.Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}

	attr, err := rep.Attribution()
	if err != nil {
		t.Fatal(err)
	}
	if len(attr) != rep.Modules {
		t.Fatalf("%d attributions for %d modules", len(attr), rep.Modules)
	}
	helpful := 0
	for _, a := range attr {
		if a.Marginal <= 0 || math.IsNaN(a.Marginal) {
			t.Errorf("module %s marginal %v", a.Module, a.Marginal)
		}
		if a.Marginal > 1.005 {
			helpful++
		}
	}
	if helpful == 0 {
		t.Error("no module's tuned CV contributes anything")
	}

	// Critical flags for the hottest loop's module.
	hotModule := -1
	for mi := 0; mi < rep.Modules; mi++ {
		for _, li := range rep.ModuleLoops(mi) {
			if li == rep.HotLoops[0] {
				hotModule = mi
			}
		}
	}
	if hotModule < 0 {
		t.Fatal("hottest loop not found in any module")
	}
	flags, err := rep.CriticalFlags(hotModule)
	if err != nil {
		t.Fatal(err)
	}
	// The eliminated configuration must still be expressible: every
	// surviving flag renders as "-name=value".
	for _, f := range flags {
		if len(f) < 4 || f[0] != '-' {
			t.Errorf("malformed critical flag %q", f)
		}
	}
	if rep.ModuleName(hotModule) == "" {
		t.Error("empty module name")
	}
	if _, err := rep.sess.CriticalFlags(rep.Best.ModuleCVs, 999, 0); err == nil {
		t.Error("out-of-range module accepted")
	}
}
