package funcytuner

import (
	"strings"
	"testing"

	"funcytuner/internal/core"
)

// FuzzLoadTuning: arbitrary JSON must never panic the loader, and
// accepted documents must yield CVs consistent with their module count.
func FuzzLoadTuning(f *testing.F) {
	f.Add(`{"flavor":"icc","modules":[]}`)
	f.Add(`{"flavor":"gcc"}`)
	f.Add(`{"program":"CL","flavor":"icc","speedup":1.2,"baseline_seconds":80,"modules":[{"name":"m","flags":"` +
		ICCSpace().Baseline().String() + `"}]}`)
	f.Add(`{"flavor":"icc","speedup":-1,"baseline_seconds":1,"modules":[{"name":"m","flags":""}]}`)
	f.Add(`not json at all`)
	f.Add(`{"flavor":"icc","modules":[{"flags":"-O=9"}]}`)
	f.Fuzz(func(t *testing.T, input string) {
		st, cvs, err := LoadTuning(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(cvs) != len(st.Modules) {
			t.Fatalf("accepted document yields %d CVs for %d modules", len(cvs), len(st.Modules))
		}
		if len(cvs) == 0 {
			t.Fatal("accepted document has no modules")
		}
		if !(st.Speedup > 0) || !(st.Baseline > 0) {
			t.Fatalf("accepted document has implausible outcome (speedup=%v, baseline=%v)", st.Speedup, st.Baseline)
		}
		for _, cv := range cvs {
			_ = cv.Knobs() // must be materializable
		}
	})
}

// FuzzDecodeCheckpoint: arbitrary JSON must never panic the checkpoint
// loader, and anything it accepts must re-validate.
func FuzzDecodeCheckpoint(f *testing.F) {
	f.Add(`{"version":1,"program":"CL","machine":"broadwell","flavor":"icc",
	  "seed":"s","samples":2,"topx":1,"modules":1,
	  "times":[["0x1p+02",""]],"totals":["0x1.8p+02",""],"cfr_times":["",""],
	  "collect_done":[0],"quarantine":["a3"],"cost":{"compiles":3,"runs":1,"sim_micros":7}}`)
	f.Add(`{"version":1,"samples":2,"topx":1,"modules":1,
	  "times":[["+Inf",""]],"totals":["+Inf",""],"cfr_times":["",""],"collect_done":[0]}`)
	f.Add(`{"version":99}`)
	f.Add(`{"version":1,"samples":2,"topx":1,"modules":1,
	  "times":[["",""]],"totals":["",""],"cfr_times":["",""],"cost":{"runs":-1}}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, input string) {
		ck, err := core.DecodeCheckpoint(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := ck.Validate(); err != nil {
			t.Fatalf("accepted checkpoint fails re-validation: %v", err)
		}
	})
}
