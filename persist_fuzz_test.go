package funcytuner

import (
	"strings"
	"testing"
)

// FuzzLoadTuning: arbitrary JSON must never panic the loader, and
// accepted documents must yield CVs consistent with their module count.
func FuzzLoadTuning(f *testing.F) {
	f.Add(`{"flavor":"icc","modules":[]}`)
	f.Add(`{"flavor":"gcc"}`)
	f.Add(`{"program":"CL","flavor":"icc","modules":[{"name":"m","flags":"` +
		ICCSpace().Baseline().String() + `"}]}`)
	f.Add(`not json at all`)
	f.Add(`{"flavor":"icc","modules":[{"flags":"-O=9"}]}`)
	f.Fuzz(func(t *testing.T, input string) {
		st, cvs, err := LoadTuning(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(cvs) != len(st.Modules) {
			t.Fatalf("accepted document yields %d CVs for %d modules", len(cvs), len(st.Modules))
		}
		for _, cv := range cvs {
			_ = cv.Knobs() // must be materializable
		}
	})
}
