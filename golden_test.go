package funcytuner

import (
	"strings"
	"testing"

	"funcytuner/internal/xrand"
)

// TestCFRGoldenFingerprints pins the default-technique (CFR) pipeline to
// fingerprints and canonical-trace hashes captured before the search side
// of internal/core was refactored behind the suggest/observe technique
// interface. CFR runs through the generic driver now; these goldens prove
// the refactor — and any future technique work — is byte-invisible to CFR
// users: same Report.Fingerprint, same canonical trace, same best time.
func TestCFRGoldenFingerprints(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name         string
		app, machine string
		samples      int
		topx         int
		seed         string
		faults       bool
		adaptive     bool
		fingerprint  uint64
		traceHash    uint64 // 0: not pinned (adaptive trace covered elsewhere)
		best         float64
	}{
		{
			name: "clean", app: CloverLeaf, machine: "broadwell",
			samples: 120, topx: 12, seed: "technique-golden",
			fingerprint: 0xac88b78148fd0816,
			traceHash:   0x4c0fc30c6d28cb51,
			best:        19.093228197221265,
		},
		{
			name: "faulted", app: Swim, machine: "sandybridge",
			samples: 60, topx: 10, seed: "technique-golden-faults", faults: true,
			fingerprint: 0x6f2761ed5569f99d,
			traceHash:   0x6546c3ceea4b6fb5,
			best:        11.554418986977778,
		},
		{
			name: "adaptive", app: CloverLeaf, machine: "broadwell",
			samples: 120, topx: 12, seed: "technique-golden", adaptive: true,
			fingerprint: 0x94f5505fbc86957a,
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			prog, err := Benchmark(c.app)
			if err != nil {
				t.Fatal(err)
			}
			m, err := MachineByName(c.machine)
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{Machine: m, Samples: c.samples, TopX: c.topx, Seed: c.seed}
			if c.faults {
				opts.Faults = DefaultFaultRates()
			}
			rec := NewTraceRecorder()
			opts.Trace = rec
			in := TuningInput(c.app, m)
			var rep *Report
			if c.adaptive {
				rep, err = NewTuner(opts).TuneAdaptive(prog, in, DefaultStopRule())
			} else {
				rep, err = NewTuner(opts).Tune(prog, in)
			}
			if err != nil {
				t.Fatal(err)
			}
			if got := rep.Fingerprint(); got != c.fingerprint {
				t.Errorf("fingerprint = %#x, want pre-refactor %#x", got, c.fingerprint)
			}
			if c.best != 0 && rep.Best.BestMeasured != c.best {
				t.Errorf("Best.BestMeasured = %v, want %v", rep.Best.BestMeasured, c.best)
			}
			if c.traceHash != 0 {
				var sb strings.Builder
				if err := rec.Snapshot().Canonical().WriteJSONL(&sb); err != nil {
					t.Fatal(err)
				}
				if got := xrand.HashString(sb.String()); got != c.traceHash {
					t.Errorf("canonical trace hash = %#x, want pre-refactor %#x", got, c.traceHash)
				}
			}
		})
	}
}
