package funcytuner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// cancelAfterGate is a WorkerGate that cancels the run's context on its
// n-th slot acquisition and refuses that acquisition. With Workers: 1
// this cancels the run at a deterministic evaluation boundary: exactly
// n-1 evaluations complete.
type cancelAfterGate struct {
	cancel context.CancelFunc
	after  int32
	calls  atomic.Int32
}

func (g *cancelAfterGate) Acquire(ctx context.Context) error {
	if g.calls.Add(1) >= g.after {
		g.cancel()
	}
	return ctx.Err()
}

func (g *cancelAfterGate) Release() {}

// A run cancelled at an arbitrary evaluation boundary and resumed from
// its checkpoint must produce a Report bit-identical (by Fingerprint,
// which covers results, traces, costs and fault tallies) to an
// uninterrupted run — the tentpole cancellation contract.
func TestCancelResumeReportEquality(t *testing.T) {
	m, _ := MachineByName("broadwell")
	prog, err := Benchmark(CloverLeaf)
	if err != nil {
		t.Fatal(err)
	}
	in := TuningInput(CloverLeaf, m)
	base := Options{
		Machine: m, Samples: 40, TopX: 8, Seed: "cancel-equality",
		Faults: DefaultFaultRates(), Workers: 1, CheckpointEvery: 1,
	}
	want, err := NewTuner(base).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}

	// Cancellation points in the collection phase (1, 12), and in the
	// CFR search phase (55).
	for _, after := range []int32{1, 12, 55} {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("cancel-%d.ckpt", after))
		ctx, cancel := context.WithCancel(context.Background())
		opts := base
		opts.Checkpoint = path
		opts.Gate = &cancelAfterGate{cancel: cancel, after: after}
		_, err := NewTuner(opts).TuneContext(ctx, prog, in)
		cancel()
		if err == nil {
			t.Fatalf("after=%d: cancelled run reported success", after)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after=%d: error %v does not unwrap to context.Canceled", after, err)
		}
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("after=%d: cancelled run left no checkpoint: %v", after, err)
		}

		resume := base
		resume.Resume = path
		got, err := NewTuner(resume).Tune(prog, in)
		if err != nil {
			t.Fatalf("after=%d: resume failed: %v", after, err)
		}
		if got.Fingerprint() != want.Fingerprint() {
			t.Fatalf("after=%d: cancel+resume fingerprint %016x != uninterrupted %016x",
				after, got.Fingerprint(), want.Fingerprint())
		}
	}
}

// Cancellation must be observationally equivalent to a simulated node
// failure (-kill-after) at the same evaluation index: with one worker
// and per-evaluation flushing, the two leave byte-identical checkpoints.
func TestCancelCheckpointMatchesKill(t *testing.T) {
	m, _ := MachineByName("broadwell")
	prog, err := Benchmark(CloverLeaf)
	if err != nil {
		t.Fatal(err)
	}
	in := TuningInput(CloverLeaf, m)
	base := Options{
		Machine: m, Samples: 30, TopX: 6, Seed: "cancel-vs-kill",
		Faults: DefaultFaultRates(), Workers: 1, CheckpointEvery: 1,
	}
	for _, n := range []int{7, 45} {
		dir := t.TempDir()

		killPath := filepath.Join(dir, "kill.ckpt")
		kOpts := base
		kOpts.Checkpoint = killPath
		kOpts.KillAfterEvals = n
		if _, err := NewTuner(kOpts).Tune(prog, in); !errors.Is(err, ErrKilled) {
			t.Fatalf("n=%d: expected ErrKilled, got %v", n, err)
		}

		cancelPath := filepath.Join(dir, "cancel.ckpt")
		ctx, cancel := context.WithCancel(context.Background())
		cOpts := base
		cOpts.Checkpoint = cancelPath
		cOpts.Gate = &cancelAfterGate{cancel: cancel, after: int32(n + 1)}
		_, err := NewTuner(cOpts).TuneContext(ctx, prog, in)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("n=%d: expected context.Canceled, got %v", n, err)
		}

		killed, err := os.ReadFile(killPath)
		if err != nil {
			t.Fatal(err)
		}
		cancelled, err := os.ReadFile(cancelPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(killed, cancelled) {
			t.Fatalf("n=%d: cancel checkpoint differs from kill checkpoint\nkill:   %d bytes\ncancel: %d bytes",
				n, len(killed), len(cancelled))
		}
	}
}

// A context cancelled before the run starts must fail fast with the
// context error, before consuming any evaluation budget.
func TestCancelBeforeStart(t *testing.T) {
	m, _ := MachineByName("broadwell")
	prog, err := Benchmark(CloverLeaf)
	if err != nil {
		t.Fatal(err)
	}
	in := TuningInput(CloverLeaf, m)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := NewTuner(Options{Machine: m, Samples: 20, TopX: 5, Seed: "pre-cancel"}).
		TuneContext(ctx, prog, in)
	if rep != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: rep=%v err=%v", rep, err)
	}
}

// TuneAdaptiveContext and CompareContext honour cancellation the same
// way TuneContext does.
func TestCancelAdaptiveAndCompare(t *testing.T) {
	m, _ := MachineByName("broadwell")
	prog, err := Benchmark(CloverLeaf)
	if err != nil {
		t.Fatal(err)
	}
	in := TuningInput(CloverLeaf, m)
	base := Options{Machine: m, Samples: 20, TopX: 5, Seed: "cancel-variants", Workers: 1}

	ctx, cancel := context.WithCancel(context.Background())
	opts := base
	opts.Gate = &cancelAfterGate{cancel: cancel, after: 6}
	_, err = NewTuner(opts).TuneAdaptiveContext(ctx, prog, in, DefaultStopRule())
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("adaptive: expected context.Canceled, got %v", err)
	}

	ctx, cancel = context.WithCancel(context.Background())
	opts = base
	opts.Gate = &cancelAfterGate{cancel: cancel, after: 6}
	_, err = NewTuner(opts).CompareContext(ctx, prog, in)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("compare: expected context.Canceled, got %v", err)
	}
}
