package funcytuner

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	tuner := testTuner(t)
	prog, _ := Benchmark(Swim)
	m, _ := MachineByName("broadwell")
	in := TuningInput(Swim, m)
	rep, err := tuner.Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Save(&buf); err != nil {
		t.Fatal(err)
	}
	st, cvs, err := LoadTuning(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Program != Swim || st.Machine != "broadwell" || st.Algorithm != "CFR" {
		t.Errorf("provenance wrong: %+v", st)
	}
	if st.Flavor != "icc" {
		t.Errorf("flavor %q", st.Flavor)
	}
	if len(cvs) != len(rep.Best.ModuleCVs) {
		t.Fatalf("loaded %d CVs, saved %d", len(cvs), len(rep.Best.ModuleCVs))
	}
	for i := range cvs {
		if !cvs[i].Equal(rep.Best.ModuleCVs[i]) {
			t.Fatalf("module %d CV changed across save/load", i)
		}
	}
	// The loaded configuration reproduces the tuned runtime exactly.
	ev, err := rep.Evaluate(cvs, in)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Total != rep.Best.TrueTime {
		t.Errorf("loaded config runs in %v, tuned %v", ev.Total, rep.Best.TrueTime)
	}
}

func TestLoadTuningErrors(t *testing.T) {
	if _, _, err := LoadTuning(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, _, err := LoadTuning(strings.NewReader(`{"flavor":"msvc"}`)); err == nil {
		t.Error("unknown flavor accepted")
	}
	bad := `{"flavor":"icc","modules":[{"name":"m","flags":"-nonsense=1"}]}`
	if _, _, err := LoadTuning(strings.NewReader(bad)); err == nil {
		t.Error("unparseable flags accepted")
	}
}

func TestTuneAdaptiveStopsEarly(t *testing.T) {
	prog, _ := Benchmark(CloverLeaf)
	m, _ := MachineByName("broadwell")
	in := TuningInput(CloverLeaf, m)
	tuner := NewTuner(Options{Machine: m, Samples: 600, TopX: 40, Seed: "adaptive-test"})

	full, err := tuner.Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	rule := StopRule{MinEvaluations: 40, Patience: 80}
	adaptive, err := tuner.TuneAdaptive(prog, in, rule)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Best.Algorithm != "CFR.adaptive" {
		t.Errorf("algorithm %q", adaptive.Best.Algorithm)
	}
	if adaptive.Best.Evaluations >= full.Best.Evaluations {
		t.Errorf("adaptive used %d evaluations, full used %d", adaptive.Best.Evaluations, full.Best.Evaluations)
	}
	// Early stopping must retain most of the full search's benefit.
	if adaptive.Best.Speedup < 1.0 {
		t.Errorf("adaptive speedup %.3f below baseline", adaptive.Best.Speedup)
	}
	gap := full.Best.Speedup - adaptive.Best.Speedup
	if gap > 0.06 {
		t.Errorf("early stopping lost too much: full %.3f vs adaptive %.3f", full.Best.Speedup, adaptive.Best.Speedup)
	}
}
