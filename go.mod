module funcytuner

go 1.22
