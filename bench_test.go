package funcytuner

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§4) under `go test -bench`. One benchmark per artifact:
//
//	BenchmarkFig1CombinedElimination   Fig. 1  (CE vs O3, GCC + ICC)
//	BenchmarkFig5OverallComparison     Fig. 5  (Random/G/FR/CFR × 3 machines)
//	BenchmarkFig6Baselines             Fig. 6  (COBAYN/PGO/OpenTuner vs CFR)
//	BenchmarkFig7InputSensitivity      Fig. 7  (small/large test inputs)
//	BenchmarkFig8TimestepScaling       Fig. 8  (CloverLeaf 100..800 steps)
//	BenchmarkFig9PerLoop               Fig. 9  (per-loop kernel speedups)
//	BenchmarkTable3Decisions           Table 3 (optimization decisions)
//
// Each iteration performs the paper-scale protocol (K = 1000 samples,
// top-50 pruning) and validates the result shape against the paper's
// qualitative claims; the regenerated rows/series are printed once per
// benchmark via -v (b.Logf). Substrate micro-benchmarks (compile, link,
// execute, collect) quantify the simulator itself.

import (
	"context"
	"runtime"

	"testing"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/caliper"
	"funcytuner/internal/compiler"
	"funcytuner/internal/core"
	"funcytuner/internal/exec"
	"funcytuner/internal/experiments"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
	"funcytuner/internal/metrics"
	"funcytuner/internal/outline"
	"funcytuner/internal/trace"
	"funcytuner/internal/xrand"
)

// benchConfig is the paper-scale configuration (1000 samples, top-50).
func benchConfig() experiments.Config {
	return experiments.DefaultConfig("funcytuner-repro")
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Run(name, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Deviations) > 0 {
			b.Fatalf("%s deviates from the paper's shape: %v", name, out.Deviations)
		}
		if i == 0 {
			for _, t := range out.Tables {
				b.Logf("\n%s", t.Render())
			}
			for _, t := range out.Texts {
				b.Logf("\n%s", t.Render())
			}
		}
	}
}

func BenchmarkFig1CombinedElimination(b *testing.B) { runExperiment(b, "fig1") }

// Extension benchmarks (beyond the paper's artifacts; see
// internal/experiments/ablation.go).
func BenchmarkAblationTopX(b *testing.B)         { runExperiment(b, "ablation") }
func BenchmarkConvergenceStudy(b *testing.B)     { runExperiment(b, "convergence") }
func BenchmarkTuningOverhead(b *testing.B)       { runExperiment(b, "overhead") }
func BenchmarkLTOAblation(b *testing.B)          { runExperiment(b, "lto") }
func BenchmarkSignificanceProtocol(b *testing.B) { runExperiment(b, "significance") }

func BenchmarkFig5OverallComparison(b *testing.B) { runExperiment(b, "fig5") }
func BenchmarkFig6Baselines(b *testing.B)         { runExperiment(b, "fig6") }
func BenchmarkFig7InputSensitivity(b *testing.B)  { runExperiment(b, "fig7") }
func BenchmarkFig8TimestepScaling(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9PerLoop(b *testing.B)           { runExperiment(b, "fig9") }
func BenchmarkTable3Decisions(b *testing.B)       { runExperiment(b, "table3") }

// ---- substrate micro-benchmarks ----

// BenchmarkCompileModule measures one module compilation (pass pipeline).
func BenchmarkCompileModule(b *testing.B) {
	tc := compiler.NewToolchain(flagspec.ICC())
	prog := apps.MustGet(apps.CloverLeaf)
	part := ir.WholeProgram(prog)
	cv := flagspec.ICC().Baseline()
	m := arch.Broadwell()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.CompileModule(prog, part.Modules[0], cv, m)
	}
}

// BenchmarkCompileAndLink measures a full per-loop compile + link with
// interference resolution.
func BenchmarkCompileAndLink(b *testing.B) {
	tc := compiler.NewToolchain(flagspec.ICC())
	prog := apps.MustGet(apps.CloverLeaf)
	m := arch.Broadwell()
	res, err := outline.AutoOutline(tc, prog, m, apps.TuningInput(apps.CloverLeaf, m), outline.HotThreshold, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	cvs := make([]flagspec.CV, len(res.Partition.Modules))
	for i := range cvs {
		cvs[i] = flagspec.ICC().Baseline().With(flagspec.IccPrefetch, i%5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.Compile(prog, res.Partition, cvs, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecRun measures one simulated program execution.
func BenchmarkExecRun(b *testing.B) {
	tc := compiler.NewToolchain(flagspec.ICC())
	prog := apps.MustGet(apps.AMG)
	m := arch.Broadwell()
	exe, err := tc.CompileUniform(prog, ir.WholeProgram(prog), flagspec.ICC().Baseline(), m)
	if err != nil {
		b.Fatal(err)
	}
	in := apps.TuningInput(apps.AMG, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec.Run(exe, m, in, exec.Options{})
	}
}

// BenchmarkCaliperCollect measures one instrumented profile collection.
func BenchmarkCaliperCollect(b *testing.B) {
	tc := compiler.NewToolchain(flagspec.ICC())
	prog := apps.MustGet(apps.LULESH)
	m := arch.Broadwell()
	exe, err := tc.CompileUniform(prog, ir.WholeProgram(prog), flagspec.ICC().Baseline(), m)
	if err != nil {
		b.Fatal(err)
	}
	in := apps.TuningInput(apps.LULESH, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		caliper.Collect(exe, m, in, 1, nil)
	}
}

// BenchmarkCFRSession measures the full FuncyTuner pipeline (collection +
// Algorithm 1) at paper scale on one benchmark/machine.
func BenchmarkCFRSession(b *testing.B) {
	tc := compiler.NewToolchain(flagspec.ICC())
	prog := apps.MustGet(apps.CloverLeaf)
	m := arch.Broadwell()
	in := apps.TuningInput(apps.CloverLeaf, m)
	res, err := outline.AutoOutline(tc, prog, m, in, outline.HotThreshold, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := core.NewSession(tc, prog, res.Partition, m, in, core.DefaultConfig("bench-cfr"))
		if err != nil {
			b.Fatal(err)
		}
		col, err := sess.Collect(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.CFR(context.Background(), col); err != nil {
			b.Fatal(err)
		}
		benchSettle(b)
	}
}

// benchSettle collects the previous iteration's garbage outside the
// timer, so every session variant (uncached, cold, warm) is measured
// from the same near-empty heap instead of paying GC for its
// predecessor's corpse inside the timed region. Applied identically to
// all session benchmarks, it changes only cross-iteration bleed, never
// the in-session cost being measured.
func benchSettle(b *testing.B) {
	b.Helper()
	b.StopTimer()
	runtime.GC()
	b.StartTimer()
}

// ---- compile/link cache micro-benchmarks ----
//
// Cache-off vs cache-on wall-clock and allocs are tracked in
// BENCH_eval.json from PR 2 on; the CI benchmark smoke job runs each once
// per push. Compilation is pure, so the cached variants produce
// bit-identical executables — only the physical work differs.

// BenchmarkCompileCached measures the CFR-shaped compile workload —
// assemblies that differ from a baseline in exactly one module, with the
// per-module CVs drawn from a small (pruned-pool-sized) set — uncached
// vs cached. With the cache on, J−1 of J module compiles are object-tier
// hits and repeated assemblies skip the link too.
func BenchmarkCompileCached(b *testing.B) {
	prog := apps.MustGet(apps.CloverLeaf)
	m := arch.Broadwell()
	space := flagspec.ICC()
	tc := compiler.NewToolchain(space)
	res, err := outline.AutoOutline(tc, prog, m, apps.TuningInput(apps.CloverLeaf, m), outline.HotThreshold, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	pool := space.Sample(xrand.NewFromString("bench-cache-pool"), 50)
	for _, cached := range []bool{false, true} {
		name := "cache=off"
		if cached {
			name = "cache=on"
		}
		b.Run(name, func(b *testing.B) {
			tc := compiler.NewToolchain(space)
			if cached {
				tc.AttachCache(compiler.NewCompileCache(0))
			}
			base := space.Baseline()
			cvs := make([]flagspec.CV, len(res.Partition.Modules))
			for mi := range cvs {
				cvs[mi] = base
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mi := i % len(cvs)
				cvs[mi] = pool[i%len(pool)]
				if _, err := tc.Compile(prog, res.Partition, cvs, m); err != nil {
					b.Fatal(err)
				}
				cvs[mi] = base
			}
		})
	}
}

// BenchmarkCollectCached measures a full mini tuning session (collection
// + CFR) uncached vs cached — the end-to-end evaluation-pipeline number.
// Each iteration gets a fresh cache, so this is one cold session with
// only intra-session reuse (collection pre-compiles every (module, CV)
// pair CFR later draws from its pruned pools).
func BenchmarkCollectCached(b *testing.B) {
	prog := apps.MustGet(apps.CloverLeaf)
	m := arch.Broadwell()
	in := apps.TuningInput(apps.CloverLeaf, m)
	space := flagspec.ICC()
	res, err := outline.AutoOutline(compiler.NewToolchain(space), prog, m, in, outline.HotThreshold, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, cached := range []bool{false, true} {
		name := "cache=off"
		if cached {
			name = "cache=on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tc := compiler.NewToolchain(space)
				if cached {
					tc.AttachCache(compiler.NewCompileCache(0))
				}
				sess, err := core.NewSession(tc, prog, res.Partition, m, in, core.Config{
					Samples: 120, TopX: 12, Seed: "bench-collect-cached", Noisy: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				col, err := sess.Collect(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sess.CFR(context.Background(), col); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCFRSessionCached is BenchmarkCFRSession (paper scale: K=1000,
// top-50) with the compile cache attached — the committed BENCH_eval.json
// speedups compare against the uncached BenchmarkCFRSession.
//
// Two regimes:
//
//   - cold: a fresh cache per session. Collection is all misses; only the
//     intra-session reuse (CFR re-drawing collection's CVs, baseline
//     re-links) is cached. This bounds the worst case — a cache attached
//     for a single one-shot run.
//   - warm: one cache shared across sessions, primed by a full session
//     before timing — the tuning-campaign steady state (FuncyTuner's
//     cross-machine sweeps and repeated-measurement protocol re-tune the
//     same program; §4.1 measures each configuration 10×). Here the
//     compile phase is almost entirely hits, which is where the
//     (J−1)/J compile-work elimination turns into wall-clock.
func BenchmarkCFRSessionCached(b *testing.B) {
	prog := apps.MustGet(apps.CloverLeaf)
	m := arch.Broadwell()
	in := apps.TuningInput(apps.CloverLeaf, m)
	res, err := outline.AutoOutline(compiler.NewToolchain(flagspec.ICC()), prog, m, in, outline.HotThreshold, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	runSession := func(b *testing.B, cc *compiler.CompileCache) {
		b.Helper()
		tc := compiler.NewToolchain(flagspec.ICC())
		tc.AttachCache(cc)
		sess, err := core.NewSession(tc, prog, res.Partition, m, in, core.DefaultConfig("bench-cfr"))
		if err != nil {
			b.Fatal(err)
		}
		col, err := sess.Collect(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.CFR(context.Background(), col); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runSession(b, compiler.NewCompileCache(0))
			benchSettle(b)
		}
	})
	b.Run("warm", func(b *testing.B) {
		cc := compiler.NewCompileCache(0)
		runSession(b, cc) // prime
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runSession(b, cc)
			benchSettle(b)
		}
	})
}

// BenchmarkSessionTraceDisabled quantifies the observability overhead on
// the paper-scale CFR session (the BenchmarkCFRSessionCached cold
// workload):
//
//   - observability=off: no recorder, no registry — the nil-receiver
//     fast path every ordinary run takes. Comparing this against
//     BenchmarkCFRSessionCached/cold bounds the cost of *having* the
//     instrumentation hooks compiled in (the acceptance bar is <2%).
//   - observability=on: trace recorder and metrics registry attached —
//     what a -trace run pays.
func BenchmarkSessionTraceDisabled(b *testing.B) {
	prog := apps.MustGet(apps.CloverLeaf)
	m := arch.Broadwell()
	in := apps.TuningInput(apps.CloverLeaf, m)
	res, err := outline.AutoOutline(compiler.NewToolchain(flagspec.ICC()), prog, m, in, outline.HotThreshold, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, observed := range []bool{false, true} {
		name := "observability=off"
		if observed {
			name = "observability=on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tc := compiler.NewToolchain(flagspec.ICC())
				tc.AttachCache(compiler.NewCompileCache(0))
				sess, err := core.NewSession(tc, prog, res.Partition, m, in, core.DefaultConfig("bench-cfr"))
				if err != nil {
					b.Fatal(err)
				}
				if observed {
					sess.AttachTrace(trace.NewRecorder())
					sess.AttachMetrics(metrics.NewRegistry())
				}
				col, err := sess.Collect(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sess.CFR(context.Background(), col); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFlagSpaceSampling measures CV sampling + knob materialization.
func BenchmarkFlagSpaceSampling(b *testing.B) {
	space := flagspec.ICC()
	rng := xrand.NewFromString("bench-sampling")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cv := space.Random(rng)
		_ = cv.Knobs()
	}
}
