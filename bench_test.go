package funcytuner

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§4) under `go test -bench`. One benchmark per artifact:
//
//	BenchmarkFig1CombinedElimination   Fig. 1  (CE vs O3, GCC + ICC)
//	BenchmarkFig5OverallComparison     Fig. 5  (Random/G/FR/CFR × 3 machines)
//	BenchmarkFig6Baselines             Fig. 6  (COBAYN/PGO/OpenTuner vs CFR)
//	BenchmarkFig7InputSensitivity      Fig. 7  (small/large test inputs)
//	BenchmarkFig8TimestepScaling       Fig. 8  (CloverLeaf 100..800 steps)
//	BenchmarkFig9PerLoop               Fig. 9  (per-loop kernel speedups)
//	BenchmarkTable3Decisions           Table 3 (optimization decisions)
//
// Each iteration performs the paper-scale protocol (K = 1000 samples,
// top-50 pruning) and validates the result shape against the paper's
// qualitative claims; the regenerated rows/series are printed once per
// benchmark via -v (b.Logf). Substrate micro-benchmarks (compile, link,
// execute, collect) quantify the simulator itself.

import (
	"testing"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/caliper"
	"funcytuner/internal/compiler"
	"funcytuner/internal/core"
	"funcytuner/internal/exec"
	"funcytuner/internal/experiments"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
	"funcytuner/internal/outline"
	"funcytuner/internal/xrand"
)

// benchConfig is the paper-scale configuration (1000 samples, top-50).
func benchConfig() experiments.Config {
	return experiments.DefaultConfig("funcytuner-repro")
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Run(name, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Deviations) > 0 {
			b.Fatalf("%s deviates from the paper's shape: %v", name, out.Deviations)
		}
		if i == 0 {
			for _, t := range out.Tables {
				b.Logf("\n%s", t.Render())
			}
			for _, t := range out.Texts {
				b.Logf("\n%s", t.Render())
			}
		}
	}
}

func BenchmarkFig1CombinedElimination(b *testing.B) { runExperiment(b, "fig1") }

// Extension benchmarks (beyond the paper's artifacts; see
// internal/experiments/ablation.go).
func BenchmarkAblationTopX(b *testing.B)         { runExperiment(b, "ablation") }
func BenchmarkConvergenceStudy(b *testing.B)     { runExperiment(b, "convergence") }
func BenchmarkTuningOverhead(b *testing.B)       { runExperiment(b, "overhead") }
func BenchmarkLTOAblation(b *testing.B)          { runExperiment(b, "lto") }
func BenchmarkSignificanceProtocol(b *testing.B) { runExperiment(b, "significance") }

func BenchmarkFig5OverallComparison(b *testing.B) { runExperiment(b, "fig5") }
func BenchmarkFig6Baselines(b *testing.B)         { runExperiment(b, "fig6") }
func BenchmarkFig7InputSensitivity(b *testing.B)  { runExperiment(b, "fig7") }
func BenchmarkFig8TimestepScaling(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9PerLoop(b *testing.B)           { runExperiment(b, "fig9") }
func BenchmarkTable3Decisions(b *testing.B)       { runExperiment(b, "table3") }

// ---- substrate micro-benchmarks ----

// BenchmarkCompileModule measures one module compilation (pass pipeline).
func BenchmarkCompileModule(b *testing.B) {
	tc := compiler.NewToolchain(flagspec.ICC())
	prog := apps.MustGet(apps.CloverLeaf)
	part := ir.WholeProgram(prog)
	cv := flagspec.ICC().Baseline()
	m := arch.Broadwell()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.CompileModule(prog, part.Modules[0], cv, m)
	}
}

// BenchmarkCompileAndLink measures a full per-loop compile + link with
// interference resolution.
func BenchmarkCompileAndLink(b *testing.B) {
	tc := compiler.NewToolchain(flagspec.ICC())
	prog := apps.MustGet(apps.CloverLeaf)
	m := arch.Broadwell()
	res, err := outline.AutoOutline(tc, prog, m, apps.TuningInput(apps.CloverLeaf, m), outline.HotThreshold, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	cvs := make([]flagspec.CV, len(res.Partition.Modules))
	for i := range cvs {
		cvs[i] = flagspec.ICC().Baseline().With(flagspec.IccPrefetch, i%5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.Compile(prog, res.Partition, cvs, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecRun measures one simulated program execution.
func BenchmarkExecRun(b *testing.B) {
	tc := compiler.NewToolchain(flagspec.ICC())
	prog := apps.MustGet(apps.AMG)
	m := arch.Broadwell()
	exe, err := tc.CompileUniform(prog, ir.WholeProgram(prog), flagspec.ICC().Baseline(), m)
	if err != nil {
		b.Fatal(err)
	}
	in := apps.TuningInput(apps.AMG, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec.Run(exe, m, in, exec.Options{})
	}
}

// BenchmarkCaliperCollect measures one instrumented profile collection.
func BenchmarkCaliperCollect(b *testing.B) {
	tc := compiler.NewToolchain(flagspec.ICC())
	prog := apps.MustGet(apps.LULESH)
	m := arch.Broadwell()
	exe, err := tc.CompileUniform(prog, ir.WholeProgram(prog), flagspec.ICC().Baseline(), m)
	if err != nil {
		b.Fatal(err)
	}
	in := apps.TuningInput(apps.LULESH, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		caliper.Collect(exe, m, in, 1, nil)
	}
}

// BenchmarkCFRSession measures the full FuncyTuner pipeline (collection +
// Algorithm 1) at paper scale on one benchmark/machine.
func BenchmarkCFRSession(b *testing.B) {
	tc := compiler.NewToolchain(flagspec.ICC())
	prog := apps.MustGet(apps.CloverLeaf)
	m := arch.Broadwell()
	in := apps.TuningInput(apps.CloverLeaf, m)
	res, err := outline.AutoOutline(tc, prog, m, in, outline.HotThreshold, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := core.NewSession(tc, prog, res.Partition, m, in, core.DefaultConfig("bench-cfr"))
		if err != nil {
			b.Fatal(err)
		}
		col, err := sess.Collect()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.CFR(col); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlagSpaceSampling measures CV sampling + knob materialization.
func BenchmarkFlagSpaceSampling(b *testing.B) {
	space := flagspec.ICC()
	rng := xrand.NewFromString("bench-sampling")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cv := space.Random(rng)
		_ = cv.Knobs()
	}
}
