package funcytuner

// This file is the facade's results-repository integration: a completed
// Report is stored, content-addressed by everything that determines it,
// and an identical later submission is served back in one lookup —
// no outlining, no session, no evaluations. The determinism contract
// makes this safe: a tuning run is a pure function of its KeySpec, so a
// stored entry and a recompute are interchangeable, and the facade
// proves it on every serve by recomputing Report.Fingerprint over the
// reconstructed result and comparing it to the fingerprint stored at
// Put time. Any mismatch (or any decode failure) invalidates the entry
// and falls through to a normal run — repository damage can cost a
// re-tune, never a wrong result.
//
// Everything round-trips losslessly: floats travel as strconv hex-float
// strings (NaN and ±Inf included — G.Independent's TrueTime is NaN by
// contract), CVs as their flag-string form re-parsed against the same
// flag space, and the canonical trace as embedded JSONL replayed
// verbatim into the caller's recorder.

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"funcytuner/internal/core"
	"funcytuner/internal/resultrepo"
	"funcytuner/internal/trace"
)

// ResultRepo is the content-addressed persistent tuning-results
// repository (re-exported so one handle can back many tuners — the
// funcytunerd job service shares one across every job it runs, the way
// SharedCache shares compile work).
type ResultRepo = resultrepo.Repo

// RepoStats is a snapshot of repository activity (entries, hits,
// misses, corrupt entries, puts).
type RepoStats = resultrepo.Stats

// OpenResultRepo opens (creating if needed) a results repository rooted
// at dir. Safe for concurrent use; multiple processes may share it.
func OpenResultRepo(dir string) (*ResultRepo, error) { return resultrepo.Open(dir) }

// Tuning-protocol mode tags: the three Tune entry points produce
// differently shaped Reports, so they key separately.
const (
	modeTune     = "tune"
	modeAdaptive = "adaptive"
	modeCompare  = "compare"
)

// keySpec enumerates the tuner's outcome-determining configuration for
// (mode, prog, in). Scheduling-only options (Workers, CacheSize, Gate,
// Trace, Progress, Checkpoint/Resume, Evaluator, Unpooled) are absent
// by design — the determinism suite proves they cannot change a Report.
func (t *Tuner) keySpec(mode string, prog *Program, in Input, rule StopRule, warmDigest uint64) resultrepo.KeySpec {
	ks := resultrepo.KeySpec{
		Mode:              mode,
		Program:           prog.Name,
		ProgramSeed:       prog.Seed,
		InputName:         in.Name,
		InputSize:         in.Size,
		InputSteps:        in.Steps,
		Machine:           t.opts.Machine.Name,
		MachineID:         t.opts.Machine.ID,
		Flavor:            t.opts.Space.Flavor.String(),
		Seed:              t.opts.Seed,
		Samples:           t.opts.Samples,
		TopX:              t.opts.TopX,
		Noisy:             *t.opts.Noisy,
		HotThreshold:      t.opts.HotThreshold,
		FaultCompileFail:  t.opts.Faults.CompileFail,
		FaultRunCrash:     t.opts.Faults.RunCrash,
		FaultTimeout:      t.opts.Faults.Timeout,
		FaultFlake:        t.opts.Faults.Flake,
		MaxRetries:        t.opts.MaxRetries,
		BackoffSeconds:    t.opts.BackoffSeconds,
		BackoffCapSeconds: t.opts.BackoffCapSeconds,
		TimeoutBudget:     t.opts.TimeoutBudget,
	}
	if mode == modeAdaptive {
		ks.StopMinEvaluations = rule.MinEvaluations
		ks.StopPatience = rule.Patience
		ks.StopMaxEvaluations = rule.MaxEvaluations
	}
	if mode == modeTune {
		ks.Technique = core.TechniqueTag(t.opts.Technique)
		ks.WarmDigest = warmDigest
	}
	return ks
}

// repoResult is one algorithm's Result in wire form. CVs travel as flag
// strings (Space.Parse is String's exact inverse); floats as hex-float
// strings, so NaN/±Inf round-trip too.
type repoResult struct {
	Algorithm       string   `json:"algorithm"`
	ModuleFlags     []string `json:"module_flags,omitempty"`
	BestMeasured    string   `json:"best_measured"`
	TrueTime        string   `json:"true_time"`
	Baseline        string   `json:"baseline"`
	Speedup         string   `json:"speedup"`
	Evaluations     int      `json:"evaluations"`
	Trace           []string `json:"trace,omitempty"`
	DegradedModules []int    `json:"degraded_modules,omitempty"`
}

// repoFaults is FaultTally in wire form.
type repoFaults struct {
	CompileFailures int64  `json:"compile_failures"`
	RunCrashes      int64  `json:"run_crashes"`
	Timeouts        int64  `json:"timeouts"`
	Flakes          int64  `json:"flakes"`
	Retries         int64  `json:"retries"`
	WastedCompiles  int64  `json:"wasted_compiles"`
	LostHours       string `json:"lost_hours"`
	Quarantined     int    `json:"quarantined"`
	DegradedModules int    `json:"degraded_modules"`
}

// repoBody is the stored form of a complete Report, minus the
// observability fields (Cache, Metrics) that Fingerprint excludes for
// the same reason storage does: they describe the run that happened to
// produce the result, not the result.
type repoBody struct {
	Fingerprint     string                 `json:"fingerprint"`
	Flavor          string                 `json:"flavor"`
	Program         string                 `json:"program,omitempty"`
	Machine         string                 `json:"machine,omitempty"`
	Results         map[string]*repoResult `json:"results"`
	ProfileTotal    string                 `json:"profile_total"`
	ProfileTotalStd string                 `json:"profile_total_std"`
	ProfileNonLoop  string                 `json:"profile_non_loop"`
	ProfilePerLoop  []string               `json:"profile_per_loop,omitempty"`
	ProfileRuns     int                    `json:"profile_runs"`
	HotLoops        []int                  `json:"hot_loops,omitempty"`
	ModuleNames     []string               `json:"module_names"`
	Compiles        int64                  `json:"compiles"`
	Runs            int64                  `json:"runs"`
	SimulatedHours  string                 `json:"simulated_hours"`
	Faults          repoFaults             `json:"faults"`
	TraceJSONL      string                 `json:"trace_jsonl,omitempty"`
}

func hexFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func hexFloats(vs []float64) []string {
	if len(vs) == 0 {
		return nil
	}
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = hexFloat(v)
	}
	return out
}

func parseHexFloats(ss []string) ([]float64, error) {
	if len(ss) == 0 {
		return nil, nil
	}
	out := make([]float64, len(ss))
	for i, s := range ss {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// encodeRepoBody serializes a freshly computed Report (live session
// attached) plus its canonical trace for storage.
func encodeRepoBody(rep *Report, tr *TuningTrace) ([]byte, error) {
	b := repoBody{
		Fingerprint:     fmt.Sprintf("%016x", rep.Fingerprint()),
		Flavor:          rep.sess.Toolchain.Space.Flavor.String(),
		Program:         rep.sess.Prog.Name,
		Machine:         rep.sess.Machine.Name,
		Results:         make(map[string]*repoResult, len(rep.All)),
		ProfileTotal:    hexFloat(rep.Profile.Total),
		ProfileTotalStd: hexFloat(rep.Profile.TotalStd),
		ProfileNonLoop:  hexFloat(rep.Profile.NonLoop),
		ProfilePerLoop:  hexFloats(rep.Profile.PerLoop),
		ProfileRuns:     rep.Profile.Runs,
		HotLoops:        rep.HotLoops,
		Compiles:        rep.Compiles,
		Runs:            rep.Runs,
		SimulatedHours:  hexFloat(rep.SimulatedHours),
		Faults: repoFaults{
			CompileFailures: rep.Faults.CompileFailures,
			RunCrashes:      rep.Faults.RunCrashes,
			Timeouts:        rep.Faults.Timeouts,
			Flakes:          rep.Faults.Flakes,
			Retries:         rep.Faults.Retries,
			WastedCompiles:  rep.Faults.WastedCompiles,
			LostHours:       hexFloat(rep.Faults.LostHours),
			Quarantined:     rep.Faults.Quarantined,
			DegradedModules: rep.Faults.DegradedModules,
		},
	}
	for _, m := range rep.sess.Part.Modules {
		b.ModuleNames = append(b.ModuleNames, m.Name)
	}
	for name, res := range rep.All {
		rr := &repoResult{
			Algorithm:       res.Algorithm,
			BestMeasured:    hexFloat(res.BestMeasured),
			TrueTime:        hexFloat(res.TrueTime),
			Baseline:        hexFloat(res.Baseline),
			Speedup:         hexFloat(res.Speedup),
			Evaluations:     res.Evaluations,
			Trace:           hexFloats(res.Trace),
			DegradedModules: res.DegradedModules,
		}
		for _, cv := range res.ModuleCVs {
			rr.ModuleFlags = append(rr.ModuleFlags, cv.String())
		}
		b.Results[name] = rr
	}
	if tr != nil && len(tr.Events) > 0 {
		var sb strings.Builder
		if err := tr.WriteJSONL(&sb); err != nil {
			return nil, err
		}
		b.TraceJSONL = sb.String()
	}
	return json.Marshal(&b)
}

// decodeRepoBody reconstructs a served Report and the fingerprint the
// entry was stored with. The caller supplies the identity the key was
// derived from (prog, machine, input, space), so pointer-typed Profile
// fields come back live. Any malformed field is an error — the caller
// treats it as a corrupt entry.
func (t *Tuner) decodeRepoBody(body []byte, prog *Program, in Input) (*Report, *TuningTrace, string, error) {
	var b repoBody
	if err := json.Unmarshal(body, &b); err != nil {
		return nil, nil, "", err
	}
	if b.Flavor != t.opts.Space.Flavor.String() {
		return nil, nil, "", fmt.Errorf("funcytuner: stored flavor %q does not match %q", b.Flavor, t.opts.Space.Flavor)
	}
	if len(b.Results) == 0 {
		return nil, nil, "", fmt.Errorf("funcytuner: stored entry has no results")
	}
	all := make(map[string]*Result, len(b.Results))
	for name, rr := range b.Results {
		res := &Result{
			Algorithm:       rr.Algorithm,
			Evaluations:     rr.Evaluations,
			DegradedModules: rr.DegradedModules,
		}
		var err error
		if res.BestMeasured, err = strconv.ParseFloat(rr.BestMeasured, 64); err != nil {
			return nil, nil, "", err
		}
		if res.TrueTime, err = strconv.ParseFloat(rr.TrueTime, 64); err != nil {
			return nil, nil, "", err
		}
		if res.Baseline, err = strconv.ParseFloat(rr.Baseline, 64); err != nil {
			return nil, nil, "", err
		}
		if res.Speedup, err = strconv.ParseFloat(rr.Speedup, 64); err != nil {
			return nil, nil, "", err
		}
		if res.Trace, err = parseHexFloats(rr.Trace); err != nil {
			return nil, nil, "", err
		}
		for _, flags := range rr.ModuleFlags {
			cv, err := t.opts.Space.Parse(flags)
			if err != nil {
				return nil, nil, "", err
			}
			res.ModuleCVs = append(res.ModuleCVs, cv)
		}
		all[name] = res
	}
	best := bestResult(all)
	if best == nil {
		return nil, nil, "", fmt.Errorf("funcytuner: stored entry has no search result")
	}
	rep := &Report{
		Best:     best,
		All:      all,
		HotLoops: b.HotLoops,
		Modules:  len(b.ModuleNames),
		Compiles: b.Compiles,
		Runs:     b.Runs,
		Served:   true,
		served: &servedMeta{
			program: prog.Name,
			machine: t.opts.Machine.Name,
			input:   in,
			flavor:  b.Flavor,
			modules: b.ModuleNames,
		},
	}
	rep.Profile = Profile{
		Program: prog,
		Machine: t.opts.Machine,
		Input:   in,
		Runs:    b.ProfileRuns,
	}
	var err error
	if rep.Profile.Total, err = strconv.ParseFloat(b.ProfileTotal, 64); err != nil {
		return nil, nil, "", err
	}
	if rep.Profile.TotalStd, err = strconv.ParseFloat(b.ProfileTotalStd, 64); err != nil {
		return nil, nil, "", err
	}
	if rep.Profile.NonLoop, err = strconv.ParseFloat(b.ProfileNonLoop, 64); err != nil {
		return nil, nil, "", err
	}
	if rep.Profile.PerLoop, err = parseHexFloats(b.ProfilePerLoop); err != nil {
		return nil, nil, "", err
	}
	if rep.SimulatedHours, err = strconv.ParseFloat(b.SimulatedHours, 64); err != nil {
		return nil, nil, "", err
	}
	rep.Faults = FaultTally{
		CompileFailures: b.Faults.CompileFailures,
		RunCrashes:      b.Faults.RunCrashes,
		Timeouts:        b.Faults.Timeouts,
		Flakes:          b.Faults.Flakes,
		Retries:         b.Faults.Retries,
		WastedCompiles:  b.Faults.WastedCompiles,
		Quarantined:     b.Faults.Quarantined,
		DegradedModules: b.Faults.DegradedModules,
	}
	if rep.Faults.LostHours, err = strconv.ParseFloat(b.Faults.LostHours, 64); err != nil {
		return nil, nil, "", err
	}
	var tr *TuningTrace
	if b.TraceJSONL != "" {
		if tr, err = trace.ReadJSONL(strings.NewReader(b.TraceJSONL)); err != nil {
			return nil, nil, "", err
		}
	}
	return rep, tr, b.Fingerprint, nil
}

// serveFromRepo resolves (mode, prog, in) against the repository:
// one key derivation, one indexed Get, one decode — no outlining, no
// session, no evaluations. The reconstructed Report's fingerprint must
// equal the one stored with the entry; anything less invalidates the
// entry and falls through to a real run. When the caller wants a trace,
// an entry stored without one is also a miss (the recompute will store
// it with the trace attached).
func (t *Tuner) serveFromRepo(mode string, prog *Program, in Input, rule StopRule, warmDigest uint64) (*Report, bool) {
	if t.repo == nil || !t.opts.SkipExist || t.err != nil ||
		t.opts.KillAfterEvals > 0 || prog == nil {
		return nil, false
	}
	key := t.keySpec(mode, prog, in, rule, warmDigest).Key()
	body, ok := t.repo.Get(key)
	if !ok {
		return nil, false
	}
	rep, tr, fp, err := t.decodeRepoBody(body, prog, in)
	if err != nil {
		t.repo.Invalidate(key)
		return nil, false
	}
	if t.opts.Trace != nil && tr == nil {
		return nil, false
	}
	if got := fmt.Sprintf("%016x", rep.Fingerprint()); got != fp {
		t.repo.Invalidate(key)
		return nil, false
	}
	if t.opts.Trace != nil {
		t.opts.Trace.Replay(tr)
	}
	return rep, true
}

// storeInRepo persists a freshly computed Report. Best-effort: a
// storage failure never fails the tuning run that produced the result.
// Crash-simulation runs (KillAfterEvals) are never stored — they are
// the checkpoint machinery's test hook, not results.
func (t *Tuner) storeInRepo(mode string, prog *Program, in Input, rule StopRule, rep *Report, warmDigest uint64) {
	if t.repo == nil || t.opts.KillAfterEvals > 0 || rep == nil || rep.sess == nil {
		return
	}
	var tr *TuningTrace
	if t.opts.Trace != nil {
		tr = t.opts.Trace.Snapshot().Canonical()
	}
	body, err := encodeRepoBody(rep, tr)
	if err != nil {
		return
	}
	_ = t.repo.Put(t.keySpec(mode, prog, in, rule, warmDigest).Key(), body)
}

// RepoStats snapshots the attached results repository's activity (zero
// when no repository is attached).
func (t *Tuner) RepoStats() RepoStats {
	if t.repo == nil {
		return RepoStats{}
	}
	return t.repo.Stats()
}

// servedMeta carries the identity a repo-served Report needs for Save:
// a served report has no live session, but its provenance is known.
type servedMeta struct {
	program string
	machine string
	input   Input
	flavor  string
	modules []string
}
