package funcytuner

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"funcytuner/internal/apps"
	"funcytuner/internal/flagspec"
)

// SavedTuning is the portable, JSON-serializable form of a tuning result:
// everything a build system needs to reproduce the tuned executable —
// which compiler flag vector compiles which module — plus provenance.
type SavedTuning struct {
	// Program, Machine and Input identify the tuning context.
	Program string `json:"program"`
	Machine string `json:"machine"`
	Input   Input  `json:"input"`
	// Algorithm that produced the configuration (normally "CFR").
	Algorithm string `json:"algorithm"`
	// Flavor is the flag-space flavor ("icc" or "gcc").
	Flavor string `json:"flavor"`
	// Speedup and Baseline record the measured outcome.
	Speedup  float64 `json:"speedup"`
	Baseline float64 `json:"baseline_seconds"`
	// Modules maps each compilation module to its command-line flags.
	Modules []SavedModule `json:"modules"`
}

// SavedModule is one module's tuned compilation command line.
type SavedModule struct {
	Name  string `json:"name"`
	Flags string `json:"flags"`
}

// Save serializes the report's best (CFR) configuration as JSON. Works
// on repo-served reports too: the repository entry carries the module
// names and provenance a SavedTuning needs, so skip-exist workflows can
// still export build configurations.
func (r *Report) Save(w io.Writer) error {
	st := SavedTuning{
		Algorithm: r.Best.Algorithm,
		Speedup:   r.Best.Speedup,
		Baseline:  r.Best.Baseline,
	}
	moduleName := func(mi int) string { return r.sess.Part.Modules[mi].Name }
	switch {
	case r.sess != nil:
		st.Program = r.sess.Prog.Name
		st.Machine = r.sess.Machine.Name
		st.Input = r.sess.Input
		st.Flavor = r.sess.Toolchain.Space.Flavor.String()
	case r.served != nil:
		st.Program = r.served.program
		st.Machine = r.served.machine
		st.Input = r.served.input
		st.Flavor = r.served.flavor
		if len(r.served.modules) < len(r.Best.ModuleCVs) {
			return fmt.Errorf("funcytuner: served report names %d modules for %d CVs", len(r.served.modules), len(r.Best.ModuleCVs))
		}
		moduleName = func(mi int) string { return r.served.modules[mi] }
	default:
		return fmt.Errorf("funcytuner: report has no session or provenance to save")
	}
	for mi, cv := range r.Best.ModuleCVs {
		st.Modules = append(st.Modules, SavedModule{
			Name:  moduleName(mi),
			Flags: cv.String(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

// LoadTuning parses a SavedTuning and re-materializes its CVs against the
// matching flag space. Documents that could not have come from a real run
// are rejected: unknown flag-space flavors, non-finite or non-positive
// measured outcomes, no modules at all, and — when Program names a known
// benchmark — more modules than the benchmark has coupling units
// (hot loops + the base module).
func LoadTuning(rd io.Reader) (*SavedTuning, []CV, error) {
	var st SavedTuning
	if err := json.NewDecoder(rd).Decode(&st); err != nil {
		return nil, nil, fmt.Errorf("funcytuner: decoding saved tuning: %w", err)
	}
	var space *Space
	switch st.Flavor {
	case flagspec.FlavorICC.String():
		space = flagspec.ICC()
	case flagspec.FlavorGCC.String():
		space = flagspec.GCC()
	default:
		return nil, nil, fmt.Errorf("funcytuner: unknown flavor %q", st.Flavor)
	}
	if !(st.Speedup > 0) || math.IsInf(st.Speedup, 0) {
		return nil, nil, fmt.Errorf("funcytuner: saved tuning has implausible speedup %v", st.Speedup)
	}
	if !(st.Baseline > 0) || math.IsInf(st.Baseline, 0) {
		return nil, nil, fmt.Errorf("funcytuner: saved tuning has implausible baseline %v", st.Baseline)
	}
	if len(st.Modules) == 0 {
		return nil, nil, fmt.Errorf("funcytuner: saved tuning has no modules")
	}
	if prog, err := apps.Get(st.Program); err == nil {
		if max := len(prog.Loops) + 1; len(st.Modules) > max {
			return nil, nil, fmt.Errorf("funcytuner: saved tuning has %d modules, but %s has at most %d coupling units",
				len(st.Modules), st.Program, max)
		}
	}
	cvs := make([]CV, 0, len(st.Modules))
	for _, m := range st.Modules {
		cv, err := space.Parse(m.Flags)
		if err != nil {
			return nil, nil, fmt.Errorf("funcytuner: module %q: %w", m.Name, err)
		}
		cvs = append(cvs, cv)
	}
	return &st, cvs, nil
}
