package funcytuner

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"funcytuner/internal/xrand"
)

// repoOpts is the shared configuration for repository facade tests:
// small enough to run fast, fault injection on so the stored report
// exercises every FaultTally field.
func repoOpts(dir string) Options {
	m, _ := MachineByName("broadwell")
	return Options{
		Machine: m, Samples: 40, TopX: 8, Seed: "repo-facade",
		Faults:   DefaultFaultRates(),
		RepoPath: dir,
	}
}

// A result served from the repository must be indistinguishable from
// the recompute it replaces: same fingerprint, same best configuration,
// same canonical trace bytes, same Save output. This is the tentpole's
// determinism bar.
func TestRepoServedBitIdentical(t *testing.T) {
	dir := t.TempDir()
	prog, err := Benchmark(Swim)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := MachineByName("broadwell")
	in := TuningInput(Swim, m)

	// First submission: computed and stored (recorder attached so the
	// canonical trace is stored with the entry).
	opts := repoOpts(dir)
	rec1 := NewTraceRecorder()
	opts.Trace = rec1
	want, err := NewTuner(opts).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	if want.Served {
		t.Fatal("first run claims to be served")
	}

	// Second submission, identical spec, SkipExist: served.
	opts2 := repoOpts(dir)
	opts2.SkipExist = true
	rec2 := NewTraceRecorder()
	opts2.Trace = rec2
	got, err := NewTuner(opts2).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Served {
		t.Fatal("identical resubmission was not served from the repository")
	}
	if got.Runs == 0 || got.Compiles == 0 {
		t.Error("served report lost its cost accounting")
	}
	if gf, wf := got.Fingerprint(), want.Fingerprint(); gf != wf {
		t.Fatalf("served fingerprint %016x != computed %016x", gf, wf)
	}
	if len(got.Best.ModuleCVs) != len(want.Best.ModuleCVs) {
		t.Fatalf("served ModuleCVs length %d != %d", len(got.Best.ModuleCVs), len(want.Best.ModuleCVs))
	}
	for i := range got.Best.ModuleCVs {
		if got.Best.ModuleCVs[i].Key() != want.Best.ModuleCVs[i].Key() {
			t.Fatalf("module %d CV diverged: %s vs %s", i, got.Best.ModuleCVs[i], want.Best.ModuleCVs[i])
		}
	}

	// Canonical trace bytes must match the original run's exactly.
	var wantTr, gotTr bytes.Buffer
	if err := rec1.Snapshot().Canonical().WriteJSONL(&wantTr); err != nil {
		t.Fatal(err)
	}
	if err := rec2.Snapshot().Canonical().WriteJSONL(&gotTr); err != nil {
		t.Fatal(err)
	}
	if wantTr.Len() == 0 || !bytes.Equal(wantTr.Bytes(), gotTr.Bytes()) {
		t.Fatalf("served canonical trace diverged (%d vs %d bytes)", wantTr.Len(), gotTr.Len())
	}

	// Save must produce identical documents with and without a session.
	var wantSave, gotSave bytes.Buffer
	if err := want.Save(&wantSave); err != nil {
		t.Fatal(err)
	}
	if err := got.Save(&gotSave); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantSave.Bytes(), gotSave.Bytes()) {
		t.Fatalf("served Save diverged:\n%s\nvs\n%s", gotSave.Bytes(), wantSave.Bytes())
	}

	// A served report has no live session: evaluation surfaces say so.
	if _, err := got.Evaluate(got.Best.ModuleCVs, in); !errors.Is(err, ErrServed) {
		t.Fatalf("Evaluate on served report: %v, want ErrServed", err)
	}
	if _, err := got.EvaluateBaseline(in); !errors.Is(err, ErrServed) {
		t.Fatalf("EvaluateBaseline on served report: %v, want ErrServed", err)
	}
}

// Any outcome-determining knob must miss: the key covers program, seed,
// sample budget, fault mix, machine and mode.
func TestRepoKeyDiscriminates(t *testing.T) {
	dir := t.TempDir()
	prog, _ := Benchmark(Swim)
	m, _ := MachineByName("broadwell")
	in := TuningInput(Swim, m)
	if _, err := NewTuner(repoOpts(dir)).Tune(prog, in); err != nil {
		t.Fatal(err)
	}

	mutations := []struct {
		name string
		mut  func(*Options)
	}{
		{"seed", func(o *Options) { o.Seed = "other-seed" }},
		{"samples", func(o *Options) { o.Samples = 41 }},
		{"topx", func(o *Options) { o.TopX = 9 }},
		{"faults", func(o *Options) { o.Faults.Flake *= 2 }},
		{"noisy", func(o *Options) { f := false; o.Noisy = &f }},
	}
	for _, mu := range mutations {
		opts := repoOpts(dir)
		opts.SkipExist = true
		mu.mut(&opts)
		rep, err := NewTuner(opts).Tune(prog, in)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Served {
			t.Errorf("%s: different config was served a stored result", mu.name)
		}
	}

	// Scheduling-only knobs must hit: same outcome by the determinism
	// contract, so the stored entry serves.
	for _, scheds := range []struct {
		name string
		mut  func(*Options)
	}{
		{"workers", func(o *Options) { o.Workers = 4 }},
		{"cache-off", func(o *Options) { o.CacheSize = -1 }},
		{"unpooled", func(o *Options) { o.Unpooled = true }},
	} {
		opts := repoOpts(dir)
		opts.SkipExist = true
		scheds.mut(&opts)
		rep, err := NewTuner(opts).Tune(prog, in)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Served {
			t.Errorf("%s: scheduling-only knob missed the repository", scheds.name)
		}
	}

	// Adaptive and compare modes key separately from plain tune.
	opts := repoOpts(dir)
	opts.SkipExist = true
	rep, err := NewTuner(opts).TuneAdaptive(prog, in, DefaultStopRule())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served {
		t.Error("adaptive submission was served a plain-tune entry")
	}
	// ... and an identical adaptive resubmission hits its own entry.
	rep2, err := NewTuner(opts).TuneAdaptive(prog, in, DefaultStopRule())
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Served {
		t.Error("identical adaptive resubmission was not served")
	}
	if rep2.Fingerprint() != rep.Fingerprint() {
		t.Error("served adaptive fingerprint diverged")
	}
}

// An entry stored without a trace cannot serve a caller that wants one;
// the recompute re-stores the entry with the trace attached, upgrading
// it in place.
func TestRepoTraceUpgrade(t *testing.T) {
	dir := t.TempDir()
	prog, _ := Benchmark(Swim)
	m, _ := MachineByName("broadwell")
	in := TuningInput(Swim, m)
	if _, err := NewTuner(repoOpts(dir)).Tune(prog, in); err != nil {
		t.Fatal(err)
	}

	opts := repoOpts(dir)
	opts.SkipExist = true
	rec := NewTraceRecorder()
	opts.Trace = rec
	rep, err := NewTuner(opts).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served {
		t.Fatal("trace-less entry served to a tracing caller")
	}
	var want bytes.Buffer
	if err := rec.Snapshot().Canonical().WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}

	// The recompute stored the trace: a third tracing submission serves.
	opts3 := repoOpts(dir)
	opts3.SkipExist = true
	rec3 := NewTraceRecorder()
	opts3.Trace = rec3
	rep3, err := NewTuner(opts3).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	if !rep3.Served {
		t.Fatal("upgraded entry did not serve a tracing caller")
	}
	var got bytes.Buffer
	if err := rec3.Snapshot().Canonical().WriteJSONL(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("upgraded entry served a divergent canonical trace")
	}
}

// repoEntryPath finds the single stored entry file under dir.
func repoEntryPath(t *testing.T, dir string) string {
	t.Helper()
	var found string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			if found != "" {
				t.Fatalf("more than one entry: %s and %s", found, path)
			}
			found = path
		}
		return nil
	})
	if err != nil || found == "" {
		t.Fatalf("no stored entry under %s (err %v)", dir, err)
	}
	return found
}

// Storage damage must never surface: a corrupt entry falls through to a
// recompute with the same fingerprint, and the repository heals itself
// on the re-store.
func TestRepoCorruptEntryFallsThroughToRecompute(t *testing.T) {
	dir := t.TempDir()
	prog, _ := Benchmark(Swim)
	m, _ := MachineByName("broadwell")
	in := TuningInput(Swim, m)
	want, err := NewTuner(repoOpts(dir)).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the middle of the entry file.
	path := repoEntryPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	opts := repoOpts(dir)
	opts.SkipExist = true
	tuner := NewTuner(opts)
	rep, err := tuner.Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served {
		t.Fatal("corrupt entry was served")
	}
	if rep.Fingerprint() != want.Fingerprint() {
		t.Fatal("recompute after corruption diverged")
	}
	st := tuner.RepoStats()
	if st.Corrupt == 0 {
		t.Fatalf("corruption not counted: %+v", st)
	}
	if st.Puts == 0 {
		t.Fatalf("recompute did not re-store the entry: %+v", st)
	}

	// The healed entry serves again.
	rep2, err := NewTuner(opts).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Served || rep2.Fingerprint() != want.Fingerprint() {
		t.Fatal("repository did not heal after corruption")
	}
}

// A body that passes the envelope checksum but whose content does not
// reproduce its stored fingerprint is invalidated, not served — the
// facade's end-to-end integrity check, one level above resultrepo's.
func TestRepoFingerprintMismatchInvalidates(t *testing.T) {
	dir := t.TempDir()
	prog, _ := Benchmark(Swim)
	m, _ := MachineByName("broadwell")
	in := TuningInput(Swim, m)
	want, err := NewTuner(repoOpts(dir)).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}

	// Tamper with the body (bump CFR's evaluation count) and re-seal the
	// envelope with a freshly computed checksum, so only the fingerprint
	// verification can catch it.
	path := repoEntryPath(t, dir)
	var env struct {
		Version  int             `json:"version"`
		Key      string          `json:"key"`
		Checksum string          `json:"checksum"`
		Body     json.RawMessage `json:"body"`
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	var body map[string]json.RawMessage
	if err := json.Unmarshal(env.Body, &body); err != nil {
		t.Fatal(err)
	}
	var results map[string]map[string]json.RawMessage
	if err := json.Unmarshal(body["results"], &results); err != nil {
		t.Fatal(err)
	}
	results["CFR"]["evaluations"] = json.RawMessage("99999")
	reenc, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	body["results"] = reenc
	newBody, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	env.Body = newBody
	env.Checksum = fmt.Sprintf("%016x", xrand.HashString(string(newBody)))
	sealed, err := json.Marshal(&env)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, sealed, 0o644); err != nil {
		t.Fatal(err)
	}

	opts := repoOpts(dir)
	opts.SkipExist = true
	rep, err := NewTuner(opts).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served {
		t.Fatal("fingerprint-mismatched entry was served")
	}
	if rep.Fingerprint() != want.Fingerprint() {
		t.Fatal("recompute after tamper diverged")
	}
}

// SkipExist without a repository is a configuration error, surfaced by
// the first Tune call like every other deferred validation failure.
func TestRepoOptionValidation(t *testing.T) {
	prog, _ := Benchmark(Swim)
	m, _ := MachineByName("broadwell")
	in := TuningInput(Swim, m)
	if _, err := NewTuner(Options{SkipExist: true}).Tune(prog, in); err == nil {
		t.Error("SkipExist without RepoPath/Repo accepted")
	}
	if _, err := NewTuner(Options{CacheSpill: t.TempDir(), CacheSize: -1}).Tune(prog, in); err == nil {
		t.Error("CacheSpill with caching disabled accepted")
	}
	if _, err := NewTuner(Options{CacheSpill: t.TempDir(), SharedCache: NewCompileCache(0)}).Tune(prog, in); err == nil {
		t.Error("CacheSpill with SharedCache accepted")
	}
}

// BenchmarkRepoServedTune is the duplicate-submission speedup proof:
// "cold" runs the full pipeline, "served" resolves the identical
// submission from the repository — key derivation, one lookup, one
// decode, one fingerprint verification. The gap is the point: serving
// is O(lookup), independent of the evaluation budget.
func BenchmarkRepoServedTune(b *testing.B) {
	m, _ := MachineByName("broadwell")
	prog, err := Benchmark(Swim)
	if err != nil {
		b.Fatal(err)
	}
	in := TuningInput(Swim, m)
	mkOpts := func(dir string) Options {
		return Options{Machine: m, Samples: 60, TopX: 10, Seed: "repo-bench", RepoPath: dir}
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir() // fresh repo: every iteration computes
			b.StartTimer()
			if _, err := NewTuner(mkOpts(dir)).Tune(prog, in); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("served", func(b *testing.B) {
		dir := b.TempDir()
		if _, err := NewTuner(mkOpts(dir)).Tune(prog, in); err != nil {
			b.Fatal(err)
		}
		opts := mkOpts(dir)
		opts.SkipExist = true
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := NewTuner(opts).Tune(prog, in)
			if err != nil {
				b.Fatal(err)
			}
			if !rep.Served {
				b.Fatal("not served")
			}
		}
	})
}
