// Command ftcalib runs the core FuncyTuner algorithms on chosen benchmarks
// and prints per-algorithm speedups plus per-loop detail. It exists to
// calibrate and sanity-check the model against the paper's result shapes
// (Fig. 5, Fig. 9, Table 3) without running the full experiment harness.
//
// Usage:
//
//	ftcalib [-bench CL] [-machine broadwell] [-samples 1000] [-topx 50] [-loops]
package main

import (
	"context"

	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/core"
	"funcytuner/internal/exec"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/outline"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ftcalib: ")
	benchFlag := flag.String("bench", "all", "benchmark name or 'all'")
	machineFlag := flag.String("machine", "broadwell", "machine name or 'all'")
	samples := flag.Int("samples", 1000, "pre-sampled CV count (K)")
	topx := flag.Int("topx", 50, "CFR pruning width (X)")
	loops := flag.Bool("loops", false, "print per-loop detail for the chosen configs")
	flag.Parse()

	var benches []string
	if *benchFlag == "all" {
		benches = apps.Names()
	} else {
		benches = strings.Split(*benchFlag, ",")
	}
	var machines []*arch.Machine
	if *machineFlag == "all" {
		machines = arch.All()
	} else {
		m, err := arch.ByName(*machineFlag)
		if err != nil {
			log.Fatal(err)
		}
		machines = []*arch.Machine{m}
	}

	tc := compiler.NewToolchain(flagspec.ICC())
	for _, m := range machines {
		fmt.Printf("== %s ==\n", m)
		fmt.Printf("%-8s %9s %9s %9s %9s %9s %9s\n", "bench", "O3(s)", "Random", "G.real", "FR", "CFR", "G.Indep")
		for _, name := range benches {
			prog, err := apps.Get(name)
			if err != nil {
				log.Fatal(err)
			}
			in := apps.TuningInput(name, m)
			out, err := outline.AutoOutline(tc, prog, m, in, outline.HotThreshold, 1, nil)
			if err != nil {
				log.Fatal(err)
			}
			cfg := core.DefaultConfig("ftcalib")
			cfg.Samples = *samples
			cfg.TopX = *topx
			sess, err := core.NewSession(tc, prog, out.Partition, m, in, cfg)
			if err != nil {
				log.Fatal(err)
			}
			results, err := sess.RunAll(context.Background())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %9.2f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
				name, results["Random"].Baseline,
				results["Random"].Speedup, results["G.realized"].Speedup,
				results["FR"].Speedup, results["CFR"].Speedup,
				results["G.Independent"].Speedup)
			if *loops {
				printLoops(sess, results)
			}
		}
		fmt.Println()
	}
}

// printLoops shows per-loop speedups and optimization notes (Fig. 9 /
// Table 3 style) for each algorithm's chosen configuration.
func printLoops(sess *core.Session, results map[string]*core.Result) {
	m := sess.Machine
	prog := sess.Prog
	baseExe, err := sess.Toolchain.CompileUniform(prog, sess.Part, sess.Toolchain.Space.Baseline(), m)
	if err != nil {
		log.Fatal(err)
	}
	baseRes := exec.Run(baseExe, m, sess.Input, exec.Options{})
	for _, alg := range []string{"Random", "G.realized", "CFR"} {
		r := results[alg]
		exe, err := sess.Toolchain.Compile(prog, sess.Part, r.ModuleCVs, m)
		if err != nil {
			log.Fatal(err)
		}
		res := exec.Run(exe, m, sess.Input, exec.Options{})
		fmt.Printf("  %s per-loop speedups:\n", alg)
		for li := range prog.Loops {
			fmt.Fprintf(os.Stdout, "    %-12s %6.3f  [%s]  (O3: %s, share %.1f%%)\n",
				prog.Loops[li].Name,
				baseRes.PerLoop[li]/res.PerLoop[li],
				exe.PerLoop[li].Notes(),
				baseExe.PerLoop[li].Notes(),
				100*baseRes.PerLoop[li]/baseRes.Total)
		}
	}
}
