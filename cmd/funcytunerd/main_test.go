package main

import (
	"io"
	"strings"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring; empty = must succeed
		check   func(t *testing.T, cfg config)
	}{
		{
			name: "defaults-are-local",
			args: nil,
			check: func(t *testing.T, cfg config) {
				if cfg.mode != "local" {
					t.Errorf("mode = %q", cfg.mode)
				}
				if cfg.globalWorkers < 1 {
					t.Errorf("globalWorkers = %d", cfg.globalWorkers)
				}
			},
		},
		{
			name: "coordinator-defaults",
			args: []string{"-mode=coordinator"},
			check: func(t *testing.T, cfg config) {
				if cfg.leaseTTL <= 0 {
					t.Errorf("leaseTTL = %v", cfg.leaseTTL)
				}
				if cfg.maxLeaseLosses < 1 {
					t.Errorf("maxLeaseLosses = %d", cfg.maxLeaseLosses)
				}
			},
		},
		{
			name: "worker-ok",
			args: []string{"-mode=worker", "-coordinator=http://127.0.0.1:7461", "-concurrency=3"},
			check: func(t *testing.T, cfg config) {
				if cfg.coordinator != "http://127.0.0.1:7461" || cfg.concurrency != 3 {
					t.Errorf("cfg = %+v", cfg)
				}
			},
		},
		{
			name: "explicit-heartbeat-below-ttl",
			args: []string{"-mode=coordinator", "-lease-ttl=10s", "-heartbeat=2s"},
			check: func(t *testing.T, cfg config) {
				if cfg.heartbeat != 2*time.Second {
					t.Errorf("heartbeat = %v", cfg.heartbeat)
				}
			},
		},
		{
			name: "repo-and-skip-exist",
			args: []string{"-repo=/tmp/ft-repo", "-skip-exist"},
			check: func(t *testing.T, cfg config) {
				if cfg.repo != "/tmp/ft-repo" || !cfg.skipExist {
					t.Errorf("cfg = %+v", cfg)
				}
			},
		},
		{
			name: "shared-cache-with-spill",
			args: []string{"-shared-cache=512", "-cache-spill=/tmp/ft-spill"},
			check: func(t *testing.T, cfg config) {
				if cfg.sharedCache != 512 || cfg.cacheSpill != "/tmp/ft-spill" {
					t.Errorf("cfg = %+v", cfg)
				}
			},
		},
		{
			name: "coordinator-with-journal",
			args: []string{"-mode=coordinator", "-fleet-journal=/tmp/ft-journal"},
			check: func(t *testing.T, cfg config) {
				if cfg.fleetJournal != "/tmp/ft-journal" {
					t.Errorf("fleetJournal = %q", cfg.fleetJournal)
				}
			},
		},
		{name: "journal-in-local-mode", args: []string{"-fleet-journal=/tmp/x"}, wantErr: "-fleet-journal requires -mode=coordinator"},
		{name: "journal-in-worker-mode", args: []string{"-mode=worker", "-coordinator=http://x", "-fleet-journal=/tmp/x"}, wantErr: "-fleet-journal requires -mode=coordinator"},
		{name: "skip-exist-without-repo", args: []string{"-skip-exist"}, wantErr: "-skip-exist requires -repo"},
		{name: "spill-without-shared-cache", args: []string{"-cache-spill=/tmp/x"}, wantErr: "-cache-spill requires -shared-cache"},
		{name: "negative-shared-cache", args: []string{"-shared-cache=-1"}, wantErr: "-shared-cache must be >= 0"},
		{name: "unknown-mode", args: []string{"-mode=cluster"}, wantErr: "-mode must be"},
		{name: "zero-global-workers", args: []string{"-global-workers=0"}, wantErr: "-global-workers must be >= 1"},
		{name: "negative-global-workers", args: []string{"-global-workers=-4"}, wantErr: "-global-workers must be >= 1"},
		{name: "zero-drain-timeout", args: []string{"-drain-timeout=0s"}, wantErr: "-drain-timeout must be positive"},
		{name: "heartbeat-equals-ttl", args: []string{"-mode=coordinator", "-lease-ttl=5s", "-heartbeat=5s"}, wantErr: "must be below -lease-ttl"},
		{name: "heartbeat-above-ttl", args: []string{"-mode=coordinator", "-lease-ttl=5s", "-heartbeat=6s"}, wantErr: "must be below -lease-ttl"},
		{name: "negative-heartbeat", args: []string{"-mode=coordinator", "-heartbeat=-1s"}, wantErr: "-heartbeat must be >= 0"},
		{name: "zero-lease-ttl", args: []string{"-mode=coordinator", "-lease-ttl=0s"}, wantErr: "-lease-ttl must be positive"},
		{name: "zero-lease-losses", args: []string{"-mode=coordinator", "-max-lease-losses=0"}, wantErr: "-max-lease-losses must be >= 1"},
		{name: "worker-without-coordinator", args: []string{"-mode=worker"}, wantErr: "requires -coordinator"},
		{name: "worker-zero-concurrency", args: []string{"-mode=worker", "-coordinator=http://x", "-concurrency=0"}, wantErr: "-concurrency must be >= 1"},
		{name: "worker-zero-poll", args: []string{"-mode=worker", "-coordinator=http://x", "-poll=0s"}, wantErr: "-poll must be positive"},
		{name: "worker-negative-fault-rate", args: []string{"-mode=worker", "-coordinator=http://x", "-worker-fault-rate=-1"}, wantErr: "-worker-fault-rate must be >= 0"},
		{
			name: "default-technique-bo",
			args: []string{"-technique=bo"},
			check: func(t *testing.T, cfg config) {
				if cfg.technique != "bo" {
					t.Errorf("technique = %q", cfg.technique)
				}
			},
		},
		{
			name: "warm-start-with-repo-and-ga",
			args: []string{"-technique=ga", "-warm-start", "-repo=/tmp/ft-repo"},
			check: func(t *testing.T, cfg config) {
				if !cfg.warmStart {
					t.Errorf("warmStart = false")
				}
			},
		},
		{
			name: "worker-cache-spill-without-shared-cache",
			args: []string{"-mode=worker", "-coordinator=http://x", "-cache-spill=/tmp/ft-spill"},
			check: func(t *testing.T, cfg config) {
				// In worker mode the evaluator always has a compile cache,
				// so spill does not require -shared-cache (that pairing is
				// a server-mode rule).
				if cfg.cacheSpill != "/tmp/ft-spill" {
					t.Errorf("cacheSpill = %q", cfg.cacheSpill)
				}
			},
		},
		{
			name: "worker-shared-cache-sets-size",
			args: []string{"-mode=worker", "-coordinator=http://x", "-shared-cache=64", "-cache-spill=/tmp/s"},
			check: func(t *testing.T, cfg config) {
				if cfg.sharedCache != 64 {
					t.Errorf("sharedCache = %d", cfg.sharedCache)
				}
			},
		},
		{name: "unknown-technique", args: []string{"-technique=tabu"}, wantErr: "-technique must be cfr, bo or ga"},
		{name: "warm-start-without-repo", args: []string{"-technique=bo", "-warm-start"}, wantErr: "-warm-start requires -repo"},
		{name: "warm-start-with-cfr", args: []string{"-warm-start", "-repo=/tmp/r"}, wantErr: "-warm-start requires -technique bo or ga"},
		{name: "worker-technique", args: []string{"-mode=worker", "-coordinator=http://x", "-technique=bo"}, wantErr: "-technique is a job default, not a worker setting"},
		{name: "worker-warm-start", args: []string{"-mode=worker", "-coordinator=http://x", "-warm-start"}, wantErr: "-warm-start is a job default, not a worker setting"},
		{name: "worker-negative-shared-cache", args: []string{"-mode=worker", "-coordinator=http://x", "-shared-cache=-2"}, wantErr: "-shared-cache must be >= 0"},
		{name: "stray-args", args: []string{"serve"}, wantErr: "unexpected arguments"},
		{name: "unknown-flag", args: []string{"-bogus"}, wantErr: "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := parseFlags(tc.args, io.Discard)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if tc.check != nil {
					tc.check(t, cfg)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got config %+v", tc.wantErr, cfg)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
