// Command funcytunerd serves FuncyTuner tuning campaigns as cancellable
// HTTP jobs. Submit a JSON JobSpec to POST /jobs, watch it via
// /jobs/{id} and /jobs/{id}/progress, cancel it with
// POST /jobs/{id}/cancel, and read the winner from /jobs/{id}/result.
//
// All jobs share one worker gate (-global-workers), so the daemon's
// total in-flight evaluations stay bounded no matter how many jobs are
// submitted. On SIGINT/SIGTERM the daemon stops accepting work, cancels
// every running job at its next evaluation boundary, and drains each to
// a valid checkpoint under -data — a restarted daemon (or the CLI) can
// resume them with the "resume" spec field.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"funcytuner/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "funcytunerd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:7461", "listen address")
	data := flag.String("data", "funcytunerd-data", "checkpoint root directory (one subdirectory per job)")
	globalWorkers := flag.Int("global-workers", runtime.GOMAXPROCS(0),
		"total in-flight evaluations across all jobs")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long shutdown waits for jobs to drain to their checkpoints")
	flag.Parse()
	if *globalWorkers < 1 {
		return fmt.Errorf("-global-workers must be >= 1, got %d", *globalWorkers)
	}
	if *drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", *drainTimeout)
	}

	mgr, err := server.NewManager(server.Config{
		Dir:  *data,
		Gate: server.NewGate(*globalWorkers),
	})
	if err != nil {
		return err
	}
	srv := &http.Server{Addr: *addr, Handler: server.NewServer(mgr)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	fmt.Printf("funcytunerd: listening on http://%s (data %s, %d worker slots)\n",
		*addr, *data, *globalWorkers)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills us

	fmt.Println("funcytunerd: shutting down, draining jobs to checkpoints...")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections first, then drain jobs; each cancelled
	// job flushes its checkpoint before its goroutine exits.
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "funcytunerd: http shutdown:", err)
	}
	if err := mgr.Drain(dctx); err != nil {
		return err
	}
	fmt.Println("funcytunerd: all jobs drained")
	return <-errc
}
