// Command funcytunerd serves FuncyTuner tuning campaigns as cancellable
// HTTP jobs. Submit a JSON JobSpec to POST /jobs, watch it via
// /jobs/{id} and /jobs/{id}/progress, cancel it with
// POST /jobs/{id}/cancel, and read the winner from /jobs/{id}/result.
//
// The daemon runs in one of three modes:
//
//	-mode=local        (default) every job evaluates in-process; all
//	                   jobs share one worker gate (-global-workers)
//	-mode=coordinator  like local, plus a fleet coordinator mounted at
//	                   /fleet/ — jobs submitted with "distributed": true
//	                   dispatch their evaluations to remote workers via
//	                   the lease protocol (-lease-ttl, -heartbeat)
//	-mode=worker       no job API; claims evaluations from -coordinator
//	                   and reports outcomes until quarantined or killed
//
// On SIGINT/SIGTERM a local or coordinator daemon stops accepting work,
// cancels every running job at its next evaluation boundary, and drains
// each to a valid checkpoint under -data — a restarted daemon (or the
// CLI) can resume them with the "resume" spec field. A worker simply
// stops claiming; its in-flight leases expire and are re-dispatched,
// which changes nothing about the run's result.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"funcytuner"
	"funcytuner/internal/faults"
	"funcytuner/internal/fleet"
	"funcytuner/internal/metrics"
	"funcytuner/internal/server"
)

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "funcytunerd:", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "funcytunerd:", err)
		os.Exit(1)
	}
}

// config is the parsed, validated command line.
type config struct {
	mode          string
	addr          string
	data          string
	globalWorkers int
	drainTimeout  time.Duration

	// Results repository (local, coordinator) and shared compile cache
	// (all modes — a worker shares one cache across every job it
	// evaluates, and spills/reloads it like a server does).
	repo        string
	skipExist   bool
	sharedCache int
	cacheSpill  string

	// Job defaults (local, coordinator): applied to submitted specs that
	// leave the matching field unset.
	technique string
	warmStart bool

	// Coordinator-mode lease protocol knobs.
	leaseTTL       time.Duration
	heartbeat      time.Duration
	maxLeaseLosses int
	fleetJournal   string

	// Worker-mode knobs.
	coordinator string
	workerID    string
	concurrency int
	claimBatch  int
	poll        time.Duration
	faultRate   float64
}

// parseFlags parses and validates args. It is pure apart from writing
// usage to errOut, so tests can drive it table-style.
func parseFlags(args []string, errOut io.Writer) (config, error) {
	var cfg config
	fs := flag.NewFlagSet("funcytunerd", flag.ContinueOnError)
	fs.SetOutput(errOut)
	fs.StringVar(&cfg.mode, "mode", "local", "local, coordinator or worker")
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:7461", "listen address (local, coordinator)")
	fs.StringVar(&cfg.data, "data", "funcytunerd-data", "checkpoint root directory (one subdirectory per job)")
	fs.IntVar(&cfg.globalWorkers, "global-workers", runtime.GOMAXPROCS(0),
		"total in-flight evaluations across all jobs (local, coordinator)")
	fs.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second,
		"how long shutdown waits for jobs to drain to their checkpoints")
	fs.StringVar(&cfg.repo, "repo", "",
		"results repository directory: completed jobs are stored there and survive restarts (local, coordinator)")
	fs.BoolVar(&cfg.skipExist, "skip-exist", false,
		"serve identical resubmissions from -repo in one lookup instead of re-running them")
	fs.IntVar(&cfg.sharedCache, "shared-cache", 0,
		"entries in a process-wide compile cache shared by all jobs; 0 = per-job private caches (server) / default size (worker)")
	fs.StringVar(&cfg.cacheSpill, "cache-spill", "",
		"directory the shared compile cache spills evicted objects to and reloads them from; requires -shared-cache (server), any cache (worker)")
	fs.StringVar(&cfg.technique, "technique", "",
		"default search technique for jobs that do not set one: cfr, bo or ga (local, coordinator)")
	fs.BoolVar(&cfg.warmStart, "warm-start", false,
		"warm-start jobs from -repo by default; requires -repo and -technique bo or ga (local, coordinator)")
	fs.DurationVar(&cfg.leaseTTL, "lease-ttl", fleet.DefaultLeaseTTL,
		"evaluation lease TTL; a worker silent for this long loses its claim (coordinator)")
	fs.DurationVar(&cfg.heartbeat, "heartbeat", 0,
		"heartbeat cadence workers are told to keep; 0 = lease-ttl/4 (coordinator)")
	fs.IntVar(&cfg.maxLeaseLosses, "max-lease-losses", fleet.DefaultMaxLeaseLosses,
		"consecutive lease losses before a worker is quarantined (coordinator)")
	fs.StringVar(&cfg.fleetJournal, "fleet-journal", "",
		"write-ahead journal for the fleet queue/lease state; a killed coordinator restarted with the same path re-adopts in-flight work (coordinator)")
	fs.StringVar(&cfg.coordinator, "coordinator", "", "coordinator base URL, e.g. http://host:7461 (worker)")
	fs.StringVar(&cfg.workerID, "worker-id", "", "stable worker identity; default hostname-pid (worker)")
	fs.IntVar(&cfg.concurrency, "concurrency", runtime.GOMAXPROCS(0), "simultaneous claims (worker)")
	fs.IntVar(&cfg.claimBatch, "claim-batch", 1,
		"tasks leased per claim round-trip; >1 batches claims and reports (worker)")
	fs.DurationVar(&cfg.poll, "poll", 2*time.Second, "claim long-poll bound (worker)")
	fs.Float64Var(&cfg.faultRate, "worker-fault-rate", 0,
		"scale of the injected worker fault mix, for chaos testing (worker)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if fs.NArg() > 0 {
		return cfg, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return cfg, cfg.validate()
}

func (cfg config) validate() error {
	switch cfg.mode {
	case "local", "coordinator", "worker":
	default:
		return fmt.Errorf("-mode must be local, coordinator or worker, got %q", cfg.mode)
	}
	if cfg.mode != "coordinator" && cfg.fleetJournal != "" {
		return fmt.Errorf("-fleet-journal requires -mode=coordinator")
	}
	// The cache flags apply to every mode: servers share one cache across
	// jobs, workers share one across the jobs they evaluate.
	if cfg.sharedCache < 0 {
		return fmt.Errorf("-shared-cache must be >= 0, got %d", cfg.sharedCache)
	}
	if cfg.mode == "worker" {
		if cfg.coordinator == "" {
			return fmt.Errorf("-mode=worker requires -coordinator URL")
		}
		if cfg.concurrency < 1 {
			return fmt.Errorf("-concurrency must be >= 1, got %d", cfg.concurrency)
		}
		if cfg.claimBatch < 1 {
			return fmt.Errorf("-claim-batch must be >= 1, got %d", cfg.claimBatch)
		}
		if cfg.poll <= 0 {
			return fmt.Errorf("-poll must be positive, got %v", cfg.poll)
		}
		if cfg.faultRate < 0 {
			return fmt.Errorf("-worker-fault-rate must be >= 0, got %v", cfg.faultRate)
		}
		if cfg.technique != "" {
			return fmt.Errorf("-technique is a job default, not a worker setting (workers replay whatever claims the coordinator issues)")
		}
		if cfg.warmStart {
			return fmt.Errorf("-warm-start is a job default, not a worker setting")
		}
		return nil
	}
	if cfg.globalWorkers < 1 {
		return fmt.Errorf("-global-workers must be >= 1, got %d", cfg.globalWorkers)
	}
	if cfg.skipExist && cfg.repo == "" {
		return fmt.Errorf("-skip-exist requires -repo")
	}
	if cfg.cacheSpill != "" && cfg.sharedCache == 0 {
		return fmt.Errorf("-cache-spill requires -shared-cache")
	}
	if !funcytuner.ValidTechnique(cfg.technique) {
		return fmt.Errorf("-technique must be cfr, bo or ga, got %q", cfg.technique)
	}
	if cfg.warmStart {
		if cfg.repo == "" {
			return fmt.Errorf("-warm-start requires -repo")
		}
		if cfg.technique != "bo" && cfg.technique != "ga" {
			return fmt.Errorf("-warm-start requires -technique bo or ga")
		}
	}
	if cfg.drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", cfg.drainTimeout)
	}
	if cfg.mode == "coordinator" {
		if cfg.leaseTTL <= 0 {
			return fmt.Errorf("-lease-ttl must be positive, got %v", cfg.leaseTTL)
		}
		if cfg.heartbeat < 0 {
			return fmt.Errorf("-heartbeat must be >= 0, got %v", cfg.heartbeat)
		}
		if cfg.heartbeat >= cfg.leaseTTL {
			return fmt.Errorf("-heartbeat (%v) must be below -lease-ttl (%v), or a healthy worker can lose its lease between beats",
				cfg.heartbeat, cfg.leaseTTL)
		}
		if cfg.maxLeaseLosses < 1 {
			return fmt.Errorf("-max-lease-losses must be >= 1, got %d", cfg.maxLeaseLosses)
		}
	}
	return nil
}

func run(cfg config) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if cfg.mode == "worker" {
		return runWorker(ctx, cfg)
	}
	return runServer(ctx, stop, cfg)
}

// runWorker claims evaluations from the coordinator until the context
// is cancelled, the coordinator shuts down, or it quarantines us.
func runWorker(ctx context.Context, cfg config) error {
	id := cfg.workerID
	if id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w, err := fleet.NewWorker(fleet.WorkerConfig{
		ID:          id,
		Coordinator: cfg.coordinator,
		Concurrency: cfg.concurrency,
		ClaimBatch:  cfg.claimBatch,
		Poll:        cfg.poll,
		CacheSize:   cfg.sharedCache,
		CacheSpill:  cfg.cacheSpill,
		Faults:      faults.DefaultWorkerRates().Scale(cfg.faultRate),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("funcytunerd: worker %s claiming from %s (%d slots)\n", id, cfg.coordinator, cfg.concurrency)
	if err := w.Run(ctx); err != nil {
		return err
	}
	fmt.Println("funcytunerd: worker stopped")
	return nil
}

// runServer serves the job API in local or coordinator mode.
func runServer(ctx context.Context, stop context.CancelFunc, cfg config) error {
	mcfg := server.Config{
		Dir:              cfg.data,
		Gate:             server.NewGate(cfg.globalWorkers),
		DefaultTechnique: cfg.technique,
		DefaultWarmStart: cfg.warmStart,
	}
	if cfg.repo != "" {
		repo, err := funcytuner.OpenResultRepo(cfg.repo)
		if err != nil {
			return err
		}
		mcfg.Repo = repo
		mcfg.SkipExist = cfg.skipExist
	}
	var cache *funcytuner.CompileCache
	if cfg.sharedCache > 0 {
		cache = funcytuner.NewCompileCache(cfg.sharedCache)
		if cfg.cacheSpill != "" {
			if err := cache.AttachSpill(cfg.cacheSpill); err != nil {
				return err
			}
		}
		mcfg.Cache = cache
	}
	if cfg.mode == "coordinator" {
		coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
			LeaseTTL:       cfg.leaseTTL,
			Heartbeat:      cfg.heartbeat,
			MaxLeaseLosses: cfg.maxLeaseLosses,
			Registry:       metrics.NewRegistry(),
			JournalPath:    cfg.fleetJournal,
		})
		if err != nil {
			return err
		}
		// Close compacts the journal on a clean drain: truncated to empty
		// when nothing is outstanding, snapshotted otherwise.
		defer coord.Close()
		mcfg.Fleet = coord
	}
	mgr, err := server.NewManager(mcfg)
	if err != nil {
		return err
	}
	if cfg.fleetJournal != "" {
		reattached, err := mgr.ReattachFleetJobs()
		if err != nil {
			return err
		}
		if n := mcfg.Fleet.RecoveredTasks(); n > 0 || len(reattached) > 0 {
			fmt.Printf("funcytunerd: fleet journal %s: re-adopted %d in-flight tasks, re-attached %d jobs\n",
				cfg.fleetJournal, n, len(reattached))
		}
	}
	srv := &http.Server{Addr: cfg.addr, Handler: server.NewServer(mgr)}

	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	fmt.Printf("funcytunerd: %s mode, listening on http://%s (data %s, %d worker slots)\n",
		cfg.mode, cfg.addr, cfg.data, cfg.globalWorkers)
	if cfg.repo != "" {
		fmt.Printf("funcytunerd: results repository at %s (skip-exist %v, %d entries)\n",
			cfg.repo, cfg.skipExist, mcfg.Repo.Len())
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills us

	fmt.Println("funcytunerd: shutting down, draining jobs to checkpoints...")
	dctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	// Stop accepting connections first, then drain jobs; each cancelled
	// job flushes its checkpoint before its goroutine exits. Closing the
	// coordinator (deferred) fails the drained distributed evaluations.
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "funcytunerd: http shutdown:", err)
	}
	if err := mgr.Drain(dctx); err != nil {
		return err
	}
	if cache != nil && cfg.cacheSpill != "" {
		// Flush the still-resident cache entries to the spill directory so
		// a restarted daemon starts warm instead of recompiling.
		cache.SpillAll()
	}
	fmt.Println("funcytunerd: all jobs drained")
	return <-errc
}
