// Command ftspace inspects the compiler optimization spaces: flag lists,
// space sizes, baseline CVs, and random samples.
//
// Usage:
//
//	ftspace [-flavor icc|gcc] [-sample N] [-seed s]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"funcytuner"
	"funcytuner/internal/xrand"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ftspace: ")
	flavor := flag.String("flavor", "icc", "flag space flavor (icc or gcc)")
	sample := flag.Int("sample", 0, "print N uniformly sampled CVs")
	seed := flag.String("seed", "ftspace", "sampling seed")
	flag.Parse()

	var space *funcytuner.Space
	switch strings.ToLower(*flavor) {
	case "icc":
		space = funcytuner.ICCSpace()
	case "gcc":
		space = funcytuner.GCCSpace()
	default:
		log.Fatalf("unknown flavor %q", *flavor)
	}

	fmt.Printf("%s optimization space: %d flags, %.3e points\n\n",
		strings.ToUpper(*flavor), space.NumFlags(), space.Size())
	fmt.Printf("%-28s %-8s %s\n", "flag", "default", "values")
	for _, f := range space.Flags {
		fmt.Printf("-%-27s %-8s %s\n", f.Name, f.Values[f.Default], strings.Join(f.Values, " | "))
	}
	fmt.Printf("\nO3 baseline CV:\n  %s\n", space.Baseline())

	if *sample > 0 {
		r := xrand.NewFromString(*seed)
		fmt.Printf("\n%d uniform samples:\n", *sample)
		for i := 0; i < *sample; i++ {
			fmt.Printf("  %s\n", space.Random(r))
		}
	}
}
