// Command ftprofile prints Caliper-style O3 baseline profiles: per-loop
// times, shares, and which loops the §3.3 rule would outline.
//
// Usage:
//
//	ftprofile [-bench all] [-machine broadwell] [-runs 10] [-threshold 0.01]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"funcytuner"
	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ftprofile: ")
	bench := flag.String("bench", "all", "benchmark name or 'all'")
	machine := flag.String("machine", "broadwell", "machine name")
	runs := flag.Int("runs", 10, "instrumented runs to average")
	threshold := flag.Float64("threshold", 0.01, "hot-loop outlining threshold")
	flag.Parse()

	m, err := arch.ByName(*machine)
	if err != nil {
		log.Fatal(err)
	}
	var names []string
	if *bench == "all" {
		names = apps.Names()
	} else {
		names = strings.Split(*bench, ",")
	}
	for _, name := range names {
		prog, err := funcytuner.Benchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		in := funcytuner.TuningInput(name, m)
		prof, err := funcytuner.ProfileBaseline(prog, m, in, *runs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(prof)
		hot := prof.HotLoops(*threshold)
		fmt.Printf("  -> %d of %d loops above the %.1f%% threshold would be outlined (J = %d)\n\n",
			len(hot), prog.NumLoops(), 100**threshold, len(hot)+1)
	}
}
