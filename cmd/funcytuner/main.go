// Command funcytuner tunes one benchmark with the FuncyTuner pipeline and
// prints the chosen per-module compilation vectors.
//
// Usage:
//
//	funcytuner [-bench CL] [-machine broadwell] [-samples 1000] [-topx 50]
//	           [-technique cfr|bo|ga] [-warm-start]
//	           [-compare] [-seed funcytuner] [-flags] [-workers N]
//	           [-cache] [-cache-size N] [-cache-spill dir]
//	           [-repo dir] [-skip-exist]
//	           [-fault-rate 1] [-max-retries 2] [-checkpoint f] [-resume f]
//	           [-trace out.jsonl] [-progress] [-report run.md]
//
// With -compare, all four §2.2 algorithms run and their speedups are
// reported side by side; otherwise only the collection + search pipeline
// runs. -technique selects the search algorithm that spends the
// post-collection budget: cfr (default; Algorithm 1), bo (an
// analytical-surrogate Bayesian optimizer) or ga (a generational genetic
// algorithm) — all deterministic per seed. -warm-start seeds bo/ga from
// the best related prior runs in -repo. With -flags, the winning
// per-module CVs are printed in full. -workers bounds evaluation
// parallelism (0 = GOMAXPROCS).
//
// The content-addressed compile/link cache is on by default (-cache=false
// disables it; -cache-size bounds it in entries). Compilation is pure, so
// cached runs are bit-identical to uncached ones — the run summary shows
// how much physical compile/link work the cache removed.
//
// The resilience flags exercise the fault-tolerant evaluation harness:
// -fault-rate scales the default injected fault mix (0 = off, 1 = the
// default 2%/1%/0.5%/4% ICE/crash/timeout/flake rates), -checkpoint
// persists progress, and -resume continues a killed run from its
// checkpoint with bit-identical results. Ctrl-C (or SIGTERM) cancels a
// run the same way: it stops at the next evaluation boundary, and with
// -checkpoint set the interrupted campaign resumes bit-identically.
//
// Observability: -trace writes the run's structured event stream as
// JSONL (with wall-clock stamps for live inspection; the deterministic
// canonical view strips them), -progress prints periodic progress lines
// with an ETA to stderr, and -report writes a markdown run report
// including the metrics snapshot. None of them change results: traced
// runs are bit-identical to untraced ones.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"funcytuner"
	"funcytuner/internal/report"
)

// cliConfig is the parsed, validated command line.
type cliConfig struct {
	bench       string
	programFile string
	size        float64
	steps       int
	machine     string
	samples     int
	topx        int
	technique   string
	warmStart   bool
	seed        string
	workers     int
	cache       bool
	cacheSize   int
	cacheSpill  string
	repoPath    string
	skipExist   bool
	compare     bool
	showFlags   bool
	adaptive    bool
	save        string
	faultRate   float64
	maxRetries  int
	timeout     float64
	checkpoint  string
	resume      string
	killAfter   int
	tracePath   string
	progress    bool
	reportPath  string
}

// parseFlags parses and validates args. It is pure apart from writing
// usage to errOut, so tests can drive it table-style.
func parseFlags(args []string, errOut io.Writer) (cliConfig, error) {
	var cfg cliConfig
	fs := flag.NewFlagSet("funcytuner", flag.ContinueOnError)
	fs.SetOutput(errOut)
	fs.StringVar(&cfg.bench, "bench", funcytuner.CloverLeaf, "benchmark name (LULESH, CL, AMG, Optewe, bwaves, fma3d, swim)")
	fs.StringVar(&cfg.programFile, "program", "", "tune a user-defined JSON program model instead of a built-in benchmark")
	fs.Float64Var(&cfg.size, "size", 0, "input size for -program (defaults to the model's BaseSize)")
	fs.IntVar(&cfg.steps, "steps", 0, "input steps for -program (defaults to the model's BaseSteps)")
	fs.StringVar(&cfg.machine, "machine", "broadwell", "machine (opteron, sandybridge, broadwell)")
	fs.IntVar(&cfg.samples, "samples", 1000, "evaluation budget K")
	fs.IntVar(&cfg.topx, "topx", 50, "CFR pruning width X")
	fs.StringVar(&cfg.technique, "technique", "",
		"search technique: cfr (default), bo (Bayesian optimization) or ga (genetic algorithm)")
	fs.BoolVar(&cfg.warmStart, "warm-start", false,
		"seed the technique from related prior runs in -repo; requires -technique bo or ga")
	fs.StringVar(&cfg.seed, "seed", "funcytuner", "tuning seed (equal seeds reproduce exactly)")
	fs.IntVar(&cfg.workers, "workers", 0, "parallel evaluation workers (0 = GOMAXPROCS)")
	fs.BoolVar(&cfg.cache, "cache", true, "memoize compile/link work (bit-identical results, less work)")
	fs.IntVar(&cfg.cacheSize, "cache-size", 0, "compile cache bound in entries (0 = default size)")
	fs.StringVar(&cfg.cacheSpill, "cache-spill", "", "directory the compile cache spills evicted objects to and reloads them from")
	fs.StringVar(&cfg.repoPath, "repo", "", "results repository directory: the finished run is stored there, content-addressed")
	fs.BoolVar(&cfg.skipExist, "skip-exist", false, "serve an identical already-completed run from -repo instead of re-tuning")
	fs.BoolVar(&cfg.compare, "compare", false, "run Random/FR/G/CFR side by side (§4.1 protocol)")
	fs.BoolVar(&cfg.showFlags, "flags", false, "print the winning per-module compilation vectors")
	fs.BoolVar(&cfg.adaptive, "adaptive", false, "early-stopped CFR (convergence-trend budget policy)")
	fs.StringVar(&cfg.save, "save", "", "write the winning configuration as JSON to this file")
	fs.Float64Var(&cfg.faultRate, "fault-rate", 0, "scale the default injected fault mix (0 = off, 1 = default rates)")
	fs.IntVar(&cfg.maxRetries, "max-retries", 0, "retry budget for transient failures (0 = default 2)")
	fs.Float64Var(&cfg.timeout, "timeout", 0, "per-evaluation deadline in simulated seconds (0 = off)")
	fs.StringVar(&cfg.checkpoint, "checkpoint", "", "persist tuning progress to this file")
	fs.StringVar(&cfg.resume, "resume", "", "resume from this checkpoint file (missing file starts fresh)")
	fs.IntVar(&cfg.killAfter, "kill-after", 0, "simulate a node failure after N evaluations (crash-testing)")
	fs.StringVar(&cfg.tracePath, "trace", "", "write the structured event trace as JSONL to this file")
	fs.BoolVar(&cfg.progress, "progress", false, "print periodic progress lines with ETA to stderr")
	fs.StringVar(&cfg.reportPath, "report", "", "write a markdown run report (results + metrics) to this file")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if fs.NArg() > 0 {
		return cfg, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return cfg, cfg.validate()
}

func (cfg cliConfig) validate() error {
	if cfg.size < 0 {
		return fmt.Errorf("-size must be >= 0, got %v", cfg.size)
	}
	if cfg.steps < 0 {
		return fmt.Errorf("-steps must be >= 0, got %d", cfg.steps)
	}
	if !funcytuner.ValidTechnique(cfg.technique) {
		return fmt.Errorf("-technique must be cfr, bo or ga, got %q", cfg.technique)
	}
	nonCFR := cfg.technique != "" && cfg.technique != "cfr"
	if nonCFR && (cfg.adaptive || cfg.compare) {
		return fmt.Errorf("-technique %s is incompatible with -adaptive/-compare (they are defined in terms of CFR)", cfg.technique)
	}
	if cfg.warmStart {
		if cfg.repoPath == "" {
			return fmt.Errorf("-warm-start requires -repo")
		}
		if !nonCFR {
			return fmt.Errorf("-warm-start requires -technique bo or ga (CFR has no initial design to seed)")
		}
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("funcytuner: ")
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatal(err)
	}
	run(cfg)
}

func run(cfg cliConfig) {
	m, err := funcytuner.MachineByName(cfg.machine)
	if err != nil {
		log.Fatal(err)
	}
	var prog *funcytuner.Program
	var in funcytuner.Input
	if cfg.programFile != "" {
		f, err := os.Open(cfg.programFile)
		if err != nil {
			log.Fatal(err)
		}
		prog, err = funcytuner.LoadProgram(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		in = funcytuner.Input{Name: "user", Size: prog.BaseSize, Steps: prog.BaseSteps}
		if cfg.size > 0 {
			in.Size = cfg.size
		}
		if cfg.steps > 0 {
			in.Steps = cfg.steps
		}
		if in.Steps == 0 {
			in.Steps = 10
		}
	} else {
		prog, err = funcytuner.Benchmark(cfg.bench)
		if err != nil {
			log.Fatal(err)
		}
		in = funcytuner.TuningInput(cfg.bench, m)
	}
	cacheBound := cfg.cacheSize
	if !cfg.cache {
		cacheBound = -1
	}
	var rec *funcytuner.TraceRecorder
	var traceFile *os.File
	if cfg.tracePath != "" {
		// Open the destination before tuning so an unwritable path fails
		// fast instead of after a long campaign.
		traceFile, err = os.Create(cfg.tracePath)
		if err != nil {
			log.Fatal(err)
		}
		rec = funcytuner.NewTraceRecorder()
		rec.WallClock(func() int64 { return time.Now().UnixNano() })
	}
	var progressTo io.Writer
	if cfg.progress {
		progressTo = os.Stderr
	}
	tuner := funcytuner.NewTuner(funcytuner.Options{
		Machine: m, Samples: cfg.samples, TopX: cfg.topx, Seed: cfg.seed,
		Technique:      cfg.technique,
		WarmStart:      cfg.warmStart,
		Workers:        cfg.workers,
		CacheSize:      cacheBound,
		CacheSpill:     cfg.cacheSpill,
		RepoPath:       cfg.repoPath,
		SkipExist:      cfg.skipExist,
		Faults:         funcytuner.DefaultFaultRates().Scale(cfg.faultRate),
		MaxRetries:     cfg.maxRetries,
		TimeoutBudget:  cfg.timeout,
		Checkpoint:     cfg.checkpoint,
		Resume:         cfg.resume,
		KillAfterEvals: cfg.killAfter,
		Trace:          rec,
		Progress:       progressTo,
	})

	// Ctrl-C (or SIGTERM) cancels the run at its next evaluation boundary;
	// with -checkpoint set, the flushed checkpoint makes the interrupted
	// campaign resumable with bit-identical results.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	fmt.Printf("tuning %s on %s with input %s\n", prog.Name, m, in)
	var rep *funcytuner.Report
	switch {
	case cfg.compare:
		rep, err = tuner.CompareContext(ctx, prog, in)
	case cfg.adaptive:
		rep, err = tuner.TuneAdaptiveContext(ctx, prog, in, funcytuner.DefaultStopRule())
	default:
		rep, err = tuner.TuneContext(ctx, prog, in)
	}
	stopSignals() // a second Ctrl-C past this point kills us immediately
	// The trace is written even when the run died (ErrKilled): the partial
	// event stream is exactly what post-mortem debugging wants.
	if rec != nil {
		werr := rec.Snapshot().WriteJSONL(traceFile)
		if cerr := traceFile.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			log.Fatal(werr)
		}
	}
	if err != nil {
		if (errors.Is(err, funcytuner.ErrKilled) || errors.Is(err, context.Canceled)) && cfg.checkpoint != "" {
			log.Fatalf("%v\nresume with: -resume %s", err, cfg.checkpoint)
		}
		log.Fatal(err)
	}
	if rec != nil {
		fmt.Printf("wrote %d trace events to %s\n", rec.Len(), cfg.tracePath)
	}

	if rep.Served {
		fmt.Printf("served from the results repository at %s (identical run already completed; re-run without -skip-exist to recompute)\n", cfg.repoPath)
	}

	fmt.Printf("\nO3 baseline profile (%d modules after outlining):\n%s\n", rep.Modules, rep.Profile)
	names := make([]string, 0, len(rep.All))
	for name := range rep.All {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := rep.All[name]
		fmt.Printf("%-14s speedup %6.3f  (baseline %.2fs, best %.2fs, %d evaluations)\n",
			name, r.Speedup, r.Baseline, r.TrueTime, r.Evaluations)
	}
	fmt.Printf("\ntuning cost: %d compiles, %d runs, %.1f simulated hours\n",
		rep.Compiles, rep.Runs, rep.SimulatedHours)
	if cs := rep.Cache; cs != (funcytuner.CacheStats{}) {
		fmt.Printf("compile cache: objects %d hits / %d misses, links %d hits / %d misses, %d coalesced, %d evictions; %d loop compiles (~%.1f MB codegen) elided\n",
			cs.ObjectHits, cs.ObjectMisses, cs.LinkHits, cs.LinkMisses,
			cs.Coalesced(), cs.Evictions, cs.LoopCompilesSaved,
			float64(cs.BytesSaved)/(1<<20))
	}
	if ft := rep.Faults; ft != (funcytuner.FaultTally{}) {
		fmt.Printf("faults: %d ICEs, %d crashes, %d timeouts, %d flakes; %d retries, %d wasted compiles, %.1f simulated hours lost\n",
			ft.CompileFailures, ft.RunCrashes, ft.Timeouts, ft.Flakes,
			ft.Retries, ft.WastedCompiles, ft.LostHours)
		fmt.Printf("quarantined %d poison CVs; %d modules degraded to baseline\n",
			ft.Quarantined, ft.DegradedModules)
	}
	fmt.Printf("%s converged within 5%% of its final best after %d evaluations\n",
		rep.Best.Algorithm, rep.Best.ConvergedAt(0.05))

	if cfg.showFlags {
		fmt.Printf("\nwinning per-module compilation vectors (%s):\n", rep.Best.Algorithm)
		for mi, cv := range rep.Best.ModuleCVs {
			fmt.Printf("  module %2d: %s\n", mi, cv)
		}
	}

	if cfg.save != "" {
		f, err := os.Create(cfg.save)
		if err != nil {
			log.Fatal(err)
		}
		// Close errors matter here: the kernel may only surface a full disk
		// or quota failure at close time, and a silently truncated
		// configuration file is worse than no file.
		werr := rep.Save(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			log.Fatal(werr)
		}
		fmt.Printf("\nsaved the winning configuration to %s\n", cfg.save)
	}

	if cfg.reportPath != "" {
		if err := os.WriteFile(cfg.reportPath, []byte(markdownReport(prog.Name, names, rep)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote the run report to %s\n", cfg.reportPath)
	}
}

// markdownReport renders the run as a small markdown document: the
// speedup table, the tuning cost, and the metrics snapshot.
func markdownReport(prog string, names []string, rep *funcytuner.Report) string {
	tbl := report.NewTable("FuncyTuner run: "+prog, "algorithm", "speedup", "baseline s", "best s", "evaluations")
	for _, name := range names {
		r := rep.All[name]
		tbl.Set(name, "speedup", r.Speedup)
		tbl.Set(name, "baseline s", r.Baseline)
		tbl.Set(name, "best s", r.TrueTime)
		tbl.Set(name, "evaluations", float64(r.Evaluations))
	}
	tbl.AddNote("%d compiles, %d runs, %.1f simulated hours", rep.Compiles, rep.Runs, rep.SimulatedHours)
	return tbl.Markdown() + "\n" + report.MetricsMarkdown(rep.Metrics)
}
