package main

import (
	"io"
	"strings"
	"testing"
)

func TestParseFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring; empty = must succeed
		check   func(t *testing.T, cfg cliConfig)
	}{
		{
			name: "defaults",
			args: nil,
			check: func(t *testing.T, cfg cliConfig) {
				if cfg.samples != 1000 || cfg.topx != 50 || !cfg.cache {
					t.Errorf("cfg = %+v", cfg)
				}
				if cfg.technique != "" || cfg.warmStart {
					t.Errorf("technique/warmStart defaults wrong: %+v", cfg)
				}
			},
		},
		{
			name: "explicit-cfr",
			args: []string{"-technique=cfr"},
			check: func(t *testing.T, cfg cliConfig) {
				if cfg.technique != "cfr" {
					t.Errorf("technique = %q", cfg.technique)
				}
			},
		},
		{
			name: "cfr-with-adaptive",
			args: []string{"-technique=cfr", "-adaptive"},
			check: func(t *testing.T, cfg cliConfig) {
				if !cfg.adaptive {
					t.Errorf("adaptive = false")
				}
			},
		},
		{
			name: "bo",
			args: []string{"-technique=bo"},
			check: func(t *testing.T, cfg cliConfig) {
				if cfg.technique != "bo" {
					t.Errorf("technique = %q", cfg.technique)
				}
			},
		},
		{
			name: "ga-warm-start-with-repo",
			args: []string{"-technique=ga", "-warm-start", "-repo=/tmp/ft-repo"},
			check: func(t *testing.T, cfg cliConfig) {
				if cfg.technique != "ga" || !cfg.warmStart || cfg.repoPath != "/tmp/ft-repo" {
					t.Errorf("cfg = %+v", cfg)
				}
			},
		},
		{name: "unknown-technique", args: []string{"-technique=annealing"}, wantErr: "-technique must be cfr, bo or ga"},
		{name: "bo-with-adaptive", args: []string{"-technique=bo", "-adaptive"}, wantErr: "incompatible with -adaptive/-compare"},
		{name: "ga-with-compare", args: []string{"-technique=ga", "-compare"}, wantErr: "incompatible with -adaptive/-compare"},
		{name: "warm-start-without-repo", args: []string{"-technique=bo", "-warm-start"}, wantErr: "-warm-start requires -repo"},
		{name: "warm-start-without-technique", args: []string{"-warm-start", "-repo=/tmp/r"}, wantErr: "-warm-start requires -technique bo or ga"},
		{name: "warm-start-with-cfr", args: []string{"-technique=cfr", "-warm-start", "-repo=/tmp/r"}, wantErr: "-warm-start requires -technique bo or ga"},
		{name: "negative-size", args: []string{"-size=-1"}, wantErr: "-size must be >= 0"},
		{name: "negative-steps", args: []string{"-steps=-1"}, wantErr: "-steps must be >= 0"},
		{name: "stray-args", args: []string{"CL"}, wantErr: "unexpected arguments"},
		{name: "unknown-flag", args: []string{"-bogus"}, wantErr: "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := parseFlags(tc.args, io.Discard)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if tc.check != nil {
					tc.check(t, cfg)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got config %+v", tc.wantErr, cfg)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
