// Command ftexperiments regenerates the paper's tables and figures.
//
// Usage:
//
//	ftexperiments [-run fig5] [-samples 1000] [-topx 50] [-seed funcytuner-repro]
//	              [-csv dir] [-quiet]
//
// Without -run, every experiment runs: the seven paper artifacts (fig1,
// fig5, fig6, fig7, fig8, fig9, table3) plus the extension studies
// (ablation, convergence, overhead, lto, significance). Each experiment
// prints its tables and any shape deviations from the paper; -csv writes
// one CSV per table, -md a combined markdown report.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"funcytuner/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ftexperiments: ")
	run := flag.String("run", "all", "experiment id (fig1..fig9, table3, ablation, convergence, overhead, lto, significance) or 'all'")
	samples := flag.Int("samples", 1000, "evaluation budget K per algorithm")
	topx := flag.Int("topx", 50, "CFR pruning width X")
	seed := flag.String("seed", "funcytuner-repro", "experiment seed")
	csvDir := flag.String("csv", "", "directory to write per-table CSV files")
	mdPath := flag.String("md", "", "write a single markdown report of all selected experiments")
	quiet := flag.Bool("quiet", false, "suppress table bodies (print deviations only)")
	flag.Parse()

	cfg := experiments.DefaultConfig(*seed)
	cfg.Samples = *samples
	cfg.TopX = *topx

	var ids []string
	if *run == "all" {
		ids = experiments.Names()
	} else {
		ids = strings.Split(*run, ",")
	}

	var md strings.Builder
	md.WriteString("# FuncyTuner reproduction — regenerated artifacts\n")
	deviations := 0
	for _, id := range ids {
		start := time.Now()
		out, err := experiments.Run(id, cfg)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Printf("==== %s (%.1fs) ====\n", out.Name, time.Since(start).Seconds())
		fmt.Fprintf(&md, "\n## %s\n\n", out.Name)
		for _, t := range out.Tables {
			if !*quiet {
				fmt.Println(t.Render())
			}
			if *csvDir != "" {
				writeCSV(*csvDir, out.Name, t.Title, t.CSV())
			}
			md.WriteString(t.Markdown())
			md.WriteByte('\n')
		}
		for _, t := range out.Texts {
			if !*quiet {
				fmt.Println(t.Render())
			}
			md.WriteString(t.Markdown())
			md.WriteByte('\n')
		}
		if len(out.Deviations) == 0 {
			fmt.Println("shape check: OK (matches the paper's qualitative claims)")
			md.WriteString("shape check: **OK**\n")
		} else {
			for _, d := range out.Deviations {
				fmt.Printf("shape DEVIATION: %s\n", d)
				fmt.Fprintf(&md, "shape **DEVIATION**: %s\n", d)
				deviations++
			}
		}
		fmt.Println()
	}
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md.String()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("markdown report written to %s\n", *mdPath)
	}
	if deviations > 0 {
		log.Fatalf("%d shape deviation(s)", deviations)
	}
}

func writeCSV(dir, exp, title, csv string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, title)
	if len(slug) > 60 {
		slug = slug[:60]
	}
	path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", exp, slug))
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		log.Fatal(err)
	}
}
