package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTrajectory drops a two-entry BENCH_eval.json where the second
// entry gains a benchmark (BenchmarkNew) and loses one (BenchmarkGone).
func writeTrajectory(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_eval.json")
	doc := `{
  "description": "test trajectory",
  "trajectory": [
    {
      "date": "2026-08-01", "pr": "PR 1",
      "benchmarks": {
        "BenchmarkShared": {"ns_per_op": 200, "bytes_per_op": 64, "allocs_per_op": 2},
        "BenchmarkGone":   {"ns_per_op": 900, "bytes_per_op": 32, "allocs_per_op": 1}
      }
    },
    {
      "date": "2026-08-02", "pr": "PR 2",
      "benchmarks": {
        "BenchmarkShared": {"ns_per_op": 100, "bytes_per_op": 64, "allocs_per_op": 2},
        "BenchmarkNew":    {"ns_per_op": 500, "bytes_per_op": 16, "allocs_per_op": 1}
      }
    }
  ]
}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffSurvivesNewBenchmark checks that a name present in only one
// entry becomes a first-class "no baseline entry" / "no candidate entry"
// row instead of an error or a footnote.
func TestDiffSurvivesNewBenchmark(t *testing.T) {
	path := writeTrajectory(t)
	var buf strings.Builder
	if err := run(&buf, path, "", ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"BenchmarkShared", "2.00x",
		"BenchmarkNew", "no baseline entry",
		"BenchmarkGone", "no candidate entry",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The new benchmark's numbers appear on its row, not just its name.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "BenchmarkNew") && !strings.Contains(line, "500") {
			t.Errorf("new-benchmark row lacks its measurement: %q", line)
		}
	}
}

// TestDiffSelectors pins the -from/-to substring selection and its
// error cases alongside the new union-of-names table.
func TestDiffSelectors(t *testing.T) {
	path := writeTrajectory(t)
	var buf strings.Builder
	if err := run(&buf, path, "PR 1", "PR 2"); err != nil {
		t.Fatalf("run with selectors: %v", err)
	}
	if err := run(&buf, path, "PR 1", "PR 1"); err == nil {
		t.Fatal("selecting the same entry twice should fail")
	}
	if err := run(&buf, path, "no-such", ""); err == nil {
		t.Fatal("unmatched selector should fail")
	}
}
