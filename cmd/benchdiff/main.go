// Command benchdiff compares two entries of the BENCH_eval.json
// trajectory and prints per-benchmark before/after ratios — the
// one-command check a perf PR runs to see what it actually changed.
//
//	go run ./cmd/benchdiff                    # last two entries
//	go run ./cmd/benchdiff -from 2026-08-06   # named baseline vs latest
//	go run ./cmd/benchdiff -from "PR 2" -to "PR 6"
//
// -from/-to select entries by substring match on the date or PR label.
// Ratios are before/after, so > 1.00 means the later entry is faster
// (ns) or leaner (bytes, allocs).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
)

type trajectory struct {
	Description string  `json:"description"`
	Trajectory  []entry `json:"trajectory"`
}

type entry struct {
	Date       string               `json:"date"`
	PR         string               `json:"pr"`
	Benchmarks map[string]benchline `json:"benchmarks"`
}

type benchline struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	var (
		path = flag.String("bench", "BENCH_eval.json", "trajectory file")
		from = flag.String("from", "", "baseline entry: substring of its date or PR label (default: second-to-last)")
		to   = flag.String("to", "", "candidate entry: substring of its date or PR label (default: last)")
	)
	flag.Parse()
	if err := run(os.Stdout, *path, *from, *to); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, path, from, to string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tr trajectory
	if err := json.Unmarshal(raw, &tr); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if len(tr.Trajectory) < 2 {
		return fmt.Errorf("%s has %d entries; need at least 2 to diff", path, len(tr.Trajectory))
	}
	a, err := pick(tr.Trajectory, from, len(tr.Trajectory)-2)
	if err != nil {
		return err
	}
	b, err := pick(tr.Trajectory, to, len(tr.Trajectory)-1)
	if err != nil {
		return err
	}
	if a == b {
		return fmt.Errorf("-from and -to select the same entry (%s)", a.Date)
	}

	fmt.Fprintf(out, "before: %s  %s\n", a.Date, a.PR)
	fmt.Fprintf(out, "after:  %s  %s\n\n", b.Date, b.PR)
	seen := make(map[string]bool, len(a.Benchmarks)+len(b.Benchmarks))
	names := make([]string, 0, len(a.Benchmarks)+len(b.Benchmarks))
	for name := range a.Benchmarks {
		seen[name] = true
		names = append(names, name)
	}
	for name := range b.Benchmarks {
		if !seen[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	w := tabwriter.NewWriter(out, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tns/op\tratio\tB/op\tratio\tallocs/op\tratio")
	for _, name := range names {
		av, inA := a.Benchmarks[name]
		bv, inB := b.Benchmarks[name]
		switch {
		case inA && inB:
			fmt.Fprintf(w, "%s\t%.0f → %.0f\t%s\t%.0f → %.0f\t%s\t%.0f → %.0f\t%s\n",
				name,
				av.NsPerOp, bv.NsPerOp, ratio(av.NsPerOp, bv.NsPerOp),
				av.BytesPerOp, bv.BytesPerOp, ratio(av.BytesPerOp, bv.BytesPerOp),
				av.AllocsPerOp, bv.AllocsPerOp, ratio(av.AllocsPerOp, bv.AllocsPerOp))
		case inB:
			// A name the trajectory just gained: still a first-class row,
			// so a perf PR adding a benchmark sees its numbers in context.
			fmt.Fprintf(w, "%s\t→ %.0f\tno baseline entry\t→ %.0f\t\t→ %.0f\t\n",
				name, bv.NsPerOp, bv.BytesPerOp, bv.AllocsPerOp)
		default:
			fmt.Fprintf(w, "%s\t%.0f →\tno candidate entry\t%.0f →\t\t%.0f →\t\n",
				name, av.NsPerOp, av.BytesPerOp, av.AllocsPerOp)
		}
	}
	return w.Flush()
}

// pick resolves a -from/-to selector against the trajectory: empty means
// the positional default, otherwise a case-insensitive substring of the
// entry's date or PR label that must match exactly one entry.
func pick(entries []entry, sel string, def int) (*entry, error) {
	if sel == "" {
		return &entries[def], nil
	}
	var found *entry
	for i := range entries {
		e := &entries[i]
		if strings.Contains(strings.ToLower(e.Date), strings.ToLower(sel)) ||
			strings.Contains(strings.ToLower(e.PR), strings.ToLower(sel)) {
			if found != nil {
				return nil, fmt.Errorf("selector %q matches both %q and %q", sel, found.Date, e.Date)
			}
			found = e
		}
	}
	if found == nil {
		return nil, fmt.Errorf("selector %q matches no entry", sel)
	}
	return found, nil
}

// ratio renders before/after as a speedup-style factor: > 1.00x means
// the after entry improved (smaller ns, bytes or allocs).
func ratio(before, after float64) string {
	if after == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", before/after)
}
