package funcytuner

import "testing"

// TestEvalQualitySmoke is the evaluations-to-quality acceptance test
// for the pluggable techniques: on the seeded bench corpus at paper
// scale (K=1000, top-50), at least one of BO/GA must reach CFR's final
// best runtime using no more than half the evaluations. Everything is
// fixed-seed, so this is a deterministic ratchet, not a statistical
// claim — if a technique change regresses search quality, this fails
// reproducibly. The measured best-at-K numbers are recorded in
// BENCH_eval.json (compare entries with cmd/benchdiff).
func TestEvalQualitySmoke(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("paper-scale runs skipped in -short mode")
	}
	corpus := []struct{ prog, mach string }{
		{CloverLeaf, "broadwell"},
		{Swim, "sandybridge"},
		{"LULESH", "opteron"},
	}
	for _, bench := range corpus {
		bench := bench
		t.Run(bench.prog+"/"+bench.mach, func(t *testing.T) {
			t.Parallel()
			m, err := MachineByName(bench.mach)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := Benchmark(bench.prog)
			if err != nil {
				t.Fatal(err)
			}
			in := TuningInput(bench.prog, m)
			best := map[string]*Result{}
			for _, tech := range []string{"cfr", "bo", "ga"} {
				rep, err := NewTuner(Options{
					Machine: m, Samples: 1000, TopX: 50,
					Seed: "eval-quality", Technique: tech,
				}).Tune(prog, in)
				if err != nil {
					t.Fatal(err)
				}
				best[tech] = rep.Best
			}
			cfrTrace := best["cfr"].Trace
			target := cfrTrace[len(cfrTrace)-1]
			hit := 0
			for _, tech := range []string{"bo", "ga"} {
				tr := best[tech].Trace
				atHalf := tr[len(tr)/2-1]
				t.Logf("%s: best at K/2 = %.4f, at K = %.4f (cfr final = %.4f)",
					tech, atHalf, tr[len(tr)-1], target)
				if atHalf <= target {
					hit++
				}
			}
			if hit == 0 {
				t.Errorf("neither bo nor ga reached cfr's final best %.4f within half the budget", target)
			}
		})
	}
}
