package funcytuner_test

import (
	"fmt"
	"log"
	"strings"

	"funcytuner"
)

// ExampleTuner_Tune tunes CloverLeaf on the Broadwell model with a reduced
// budget (the paper's defaults are Samples=1000, TopX=50) and inspects the
// per-loop decisions of the winning configuration.
func ExampleTuner_Tune() {
	prog, err := funcytuner.Benchmark(funcytuner.CloverLeaf)
	if err != nil {
		log.Fatal(err)
	}
	machine, err := funcytuner.MachineByName("broadwell")
	if err != nil {
		log.Fatal(err)
	}
	tuner := funcytuner.NewTuner(funcytuner.Options{
		Machine: machine, Samples: 250, TopX: 25, Seed: "doc-example",
	})
	in := funcytuner.TuningInput(prog.Name, machine)
	rep, err := tuner.Tune(prog, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modules: %d\n", rep.Modules)
	fmt.Printf("speedup: %.2f\n", rep.Best.Speedup)

	base, err := rep.EvaluateBaseline(in)
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := rep.Evaluate(rep.Best.ModuleCVs, in)
	if err != nil {
		log.Fatal(err)
	}
	li := prog.LoopIndex("acc")
	fmt.Printf("acc: O3 [%s] -> CFR [%s], %.2fx\n",
		base.Notes[li], tuned.Notes[li], base.PerLoop[li]/tuned.PerLoop[li])
	// Output:
	// modules: 12
	// speedup: 1.05
	// acc: O3 [S, unroll3, IS, IO] -> CFR [256, unroll8, IO], 1.91x
}

// ExampleLoadProgram defines an application model as JSON — the schema a
// downstream user fills in for code the suite does not ship — and
// validates it.
func ExampleLoadProgram() {
	const model = `{
	  "Name": "mykernel",
	  "Domain": "demo",
	  "LOC": 300,
	  "Loops": [
	    {"Name": "stream", "File": "k.f90", "TripCount": 1e8,
	     "WorkPerIter": 4, "BytesPerIter": 32, "FPFraction": 0.95,
	     "WorkingSetKB": 16000, "Parallel": true, "WSScaleExp": 2}
	  ],
	  "NonLoopCode": {"WorkPerStep": 4e8, "SetupWork": 4e8},
	  "BaseSize": 1000,
	  "BaseSteps": 10
	}`
	prog, err := funcytuner.LoadProgram(strings.NewReader(model))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d hot loop(s), validated\n", prog.Name, prog.NumLoops())
	// Output:
	// mykernel: 1 hot loop(s), validated
}

// ExampleICCSpace shows the compiler optimization space the tuner
// searches (§2.1's COS).
func ExampleICCSpace() {
	space := funcytuner.ICCSpace()
	fmt.Printf("flags: %d\n", space.NumFlags())
	fmt.Printf("points: %.1e\n", space.Size())
	// Output:
	// flags: 33
	// points: 2.2e+13
}
