package funcytuner

import (
	"encoding/json"
	"fmt"
	"io"

	"funcytuner/internal/ir"
	"funcytuner/internal/xrand"
)

// Program models are plain exported-field structs, so users can author
// their own applications as JSON and tune them from the CLI
// (`funcytuner -program my-app.json`). See examples/custom_program for the
// equivalent in Go and internal/ir for field semantics.

// SaveProgram serializes a program model as JSON.
func SaveProgram(w io.Writer, prog *Program) error {
	if err := Validate(prog); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(prog)
}

// LoadProgram parses a JSON program model, fills in derivable fields
// (loop IDs, program seed, default coupling matrix when omitted) and
// validates it.
func LoadProgram(r io.Reader) (*Program, error) {
	var prog Program
	if err := json.NewDecoder(r).Decode(&prog); err != nil {
		return nil, fmt.Errorf("funcytuner: decoding program: %w", err)
	}
	if prog.Seed == 0 {
		prog.Seed = xrand.HashString("funcytuner/user-program/" + prog.Name)
	}
	for i := range prog.Loops {
		l := &prog.Loops[i]
		if l.ID == 0 {
			l.ID = ir.LoopID(prog.Name, l.Name)
		}
		if l.InvocationsPerStep == 0 {
			l.InvocationsPerStep = 1
		}
		if l.ScaleExp == 0 {
			l.ScaleExp = 2
		}
		if l.BodySize == 0 {
			l.BodySize = 1
		}
	}
	if prog.Coupling == nil {
		// Default: couple loops sharing a source file at 0.6, everything
		// to the base module at 0.05.
		n := len(prog.Loops) + 1
		prog.Coupling = make([][]float64, n)
		for i := range prog.Coupling {
			prog.Coupling[i] = make([]float64, n)
		}
		for i := 0; i < len(prog.Loops); i++ {
			for j := i + 1; j < len(prog.Loops); j++ {
				if prog.Loops[i].File != "" && prog.Loops[i].File == prog.Loops[j].File {
					prog.Coupling[i][j], prog.Coupling[j][i] = 0.6, 0.6
				}
			}
			prog.Coupling[i][n-1], prog.Coupling[n-1][i] = 0.05, 0.05
		}
	}
	if err := Validate(&prog); err != nil {
		return nil, err
	}
	return &prog, nil
}
