package funcytuner

import (
	"context"

	"bytes"
	"strings"
	"testing"
	"time"

	"funcytuner/internal/compiler"
	"funcytuner/internal/core"
	"funcytuner/internal/metrics"
	"funcytuner/internal/outline"
	"funcytuner/internal/trace"
)

// canonicalTrace runs Tune with a recorder attached and returns the
// canonical JSONL bytes plus the decoded trace (for Diff-based failure
// messages).
func canonicalTrace(t *testing.T, opts Options, prog *Program, in Input) ([]byte, *trace.Trace) {
	t.Helper()
	rec := NewTraceRecorder()
	opts.Trace = rec
	if _, err := NewTuner(opts).Tune(prog, in); err != nil {
		t.Fatal(err)
	}
	canon := rec.Snapshot().Canonical()
	var buf bytes.Buffer
	if err := canon.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), canon
}

// The canonical trace must be byte-identical for a given (seed, config)
// across repeated runs, worker counts, and cache on/off — the golden-
// trace determinism contract. A failure names the first divergent event
// rather than dumping two byte blobs.
func TestGoldenTraceDeterminism(t *testing.T) {
	m, _ := MachineByName("broadwell")
	prog, err := Benchmark(CloverLeaf)
	if err != nil {
		t.Fatal(err)
	}
	in := TuningInput(CloverLeaf, m)
	base := Options{
		Machine: m, Samples: 30, TopX: 6, Seed: "golden-trace",
		Faults: DefaultFaultRates(), Workers: 1,
	}
	want, wantTrace := canonicalTrace(t, base, prog, in)
	if len(wantTrace.Events) == 0 {
		t.Fatal("empty canonical trace")
	}

	// Shape sanity on the reference: session marker, phase markers in
	// deterministic order, per-evaluation spans, and (given the default
	// fault mix at K=30) at least one fault event; no scheduling-dependent
	// events or wall stamps survive canonicalization.
	kinds := map[trace.Kind]int{}
	for _, e := range wantTrace.Events {
		kinds[e.Kind]++
		if e.Sched || e.Wall != 0 {
			t.Fatalf("canonical event kept nondeterministic fields: %+v", e)
		}
	}
	for _, k := range []trace.Kind{trace.KindSession, trace.KindPhase, trace.KindCompile,
		trace.KindRun, trace.KindEval, trace.KindFault} {
		if kinds[k] == 0 {
			t.Errorf("canonical trace has no %q events: %v", k, kinds)
		}
	}
	if kinds[trace.KindCache] != 0 {
		t.Errorf("cache events leaked into the canonical trace")
	}
	if kinds[trace.KindEval] != 2*base.Samples {
		t.Errorf("eval spans = %d, want %d (collect K + CFR K)", kinds[trace.KindEval], 2*base.Samples)
	}

	variants := []struct {
		name string
		mut  func(*Options)
	}{
		{"rerun-workers-1", func(*Options) {}},
		{"workers-4", func(o *Options) { o.Workers = 4 }},
		{"workers-gomaxprocs", func(o *Options) { o.Workers = 0 }},
		{"cache-off-workers-4", func(o *Options) { o.Workers = 4; o.CacheSize = -1 }},
	}
	for _, v := range variants {
		opts := base
		v.mut(&opts)
		got, gotTrace := canonicalTrace(t, opts, prog, in)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: canonical trace diverged: %s", v.name, trace.Diff(wantTrace, gotTrace))
		}
	}

	// A different seed must give a different trace — the test would be
	// vacuous if the canonical encoding collapsed distinct runs.
	reseeded := base
	reseeded.Seed = "golden-trace-2"
	if got, _ := canonicalTrace(t, reseeded, prog, in); bytes.Equal(got, want) {
		t.Error("different seeds produced identical canonical traces")
	}
}

// The canonical JSONL document must survive a write/read/write cycle
// byte-identically — the persistence contract the fuzz target probes
// with arbitrary input, checked here on a real run's trace.
func TestGoldenTraceRoundTrip(t *testing.T) {
	m, _ := MachineByName("sandybridge")
	prog, err := Benchmark(Swim)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Machine: m, Samples: 20, TopX: 5, Seed: "trace-roundtrip",
		Faults: DefaultFaultRates(),
	}
	first, _ := canonicalTrace(t, opts, prog, TuningInput(Swim, m))
	dec, err := trace.ReadJSONL(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := dec.WriteJSONL(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second.Bytes()) {
		t.Fatal("canonical trace does not round-trip byte-identically")
	}
}

// Attaching a trace recorder must not perturb results: for clean and
// faulty configurations at several worker counts, a traced run's Report
// fingerprint must equal the untraced run's.
func TestTraceDoesNotPerturbReport(t *testing.T) {
	m, _ := MachineByName("broadwell")
	prog, err := Benchmark(CloverLeaf)
	if err != nil {
		t.Fatal(err)
	}
	in := TuningInput(CloverLeaf, m)
	for _, rates := range []FaultRates{{}, DefaultFaultRates()} {
		faulty := rates != (FaultRates{})
		base := Options{
			Machine: m, Samples: 30, TopX: 6, Seed: "trace-identity",
			Faults: rates, Workers: 1,
		}
		plain, err := NewTuner(base).Tune(prog, in)
		if err != nil {
			t.Fatal(err)
		}
		wantFP := plain.Fingerprint()
		for _, workers := range []int{1, 4, 0} {
			opts := base
			opts.Workers = workers
			rec := NewTraceRecorder()
			rec.WallClock(func() int64 { return time.Now().UnixNano() })
			opts.Trace = rec
			traced, err := NewTuner(opts).Tune(prog, in)
			if err != nil {
				t.Fatal(err)
			}
			if traced.Fingerprint() != wantFP {
				t.Errorf("faults=%v workers=%d: traced fingerprint differs from untraced", faulty, workers)
			}
			if rec.Len() == 0 {
				t.Errorf("faults=%v workers=%d: recorder captured nothing", faulty, workers)
			}
		}
	}
}

// After a faulty parallel session, the metric counters must equal the
// CostAccount ledger exactly, and the cache outcome counters must equal
// the CacheStats delta since the instruments were attached (the cache
// also served the outline phase, which precedes the session).
func TestMetricsMatchCostAccountAndCacheStats(t *testing.T) {
	m, _ := MachineByName("broadwell")
	prog, err := Benchmark(CloverLeaf)
	if err != nil {
		t.Fatal(err)
	}
	in := TuningInput(CloverLeaf, m)
	tc := compiler.NewToolchain(ICCSpace())
	tc.AttachCache(compiler.NewCompileCache(0))
	res, err := outline.AutoOutline(tc, prog, m, in, outline.HotThreshold, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSession(tc, prog, res.Partition, m, in, core.Config{
		Samples: 40, TopX: 8, Seed: "metrics-property", Workers: 4, Noisy: true,
		Faults: DefaultFaultRates(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sess.AttachMetrics(metrics.NewRegistry())
	cs0 := sess.CacheStats()
	col, err := sess.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.CFR(context.Background(), col); err != nil {
		t.Fatal(err)
	}
	snap := sess.MetricsSnapshot()

	counters := map[string]int64{
		core.MetricEvals:           sess.CompletedEvals(),
		core.MetricCompiles:        sess.Cost.Compiles(),
		core.MetricRuns:            sess.Cost.Runs(),
		core.MetricRetries:         sess.Cost.Retries(),
		core.MetricFlakes:          sess.Cost.Flakes(),
		core.MetricTimeouts:        sess.Cost.Timeouts(),
		core.MetricCompileFailures: sess.Cost.CompileFailures(),
		core.MetricRunCrashes:      sess.Cost.RunCrashes(),
		core.MetricWastedCompiles:  sess.Cost.WastedCompiles(),
	}
	for name, want := range counters {
		if got := snap.Counter(name); got != want {
			t.Errorf("counter %q = %d, CostAccount says %d", name, got, want)
		}
	}
	if got := float64(snap.Counter(core.MetricSimMicros)) / 1e6 / 3600; got != sess.Cost.SimulatedHours() {
		t.Errorf("sim_micros implies %v hours, CostAccount says %v", got, sess.Cost.SimulatedHours())
	}
	if got := float64(snap.Counter(core.MetricFaultMicros)) / 1e6 / 3600; got != sess.Cost.FaultHours() {
		t.Errorf("fault_micros implies %v hours, CostAccount says %v", got, sess.Cost.FaultHours())
	}
	// The fault mix at this budget must make the cross-check non-vacuous.
	if counters[core.MetricRetries] == 0 || counters[core.MetricFlakes] == 0 {
		t.Errorf("faulty session injected nothing (retries=%d, flakes=%d)",
			counters[core.MetricRetries], counters[core.MetricFlakes])
	}

	// Cache counters vs the CacheStats delta since AttachMetrics.
	ds := sess.CacheStats()
	cacheWant := map[string]int64{
		core.MetricCacheObjectHits:      ds.ObjectHits - cs0.ObjectHits,
		core.MetricCacheObjectMisses:    ds.ObjectMisses - cs0.ObjectMisses,
		core.MetricCacheObjectCoalesced: ds.ObjectCoalesced - cs0.ObjectCoalesced,
		core.MetricCacheLinkHits:        ds.LinkHits - cs0.LinkHits,
		core.MetricCacheLinkMisses:      ds.LinkMisses - cs0.LinkMisses,
		core.MetricCacheLinkCoalesced:   ds.LinkCoalesced - cs0.LinkCoalesced,
	}
	for name, want := range cacheWant {
		if got := snap.Counter(name); got != want {
			t.Errorf("counter %q = %d, CacheStats delta says %d", name, got, want)
		}
	}
	if cacheWant[core.MetricCacheObjectHits] == 0 {
		t.Error("session never hit the object cache; the cache cross-check is vacuous")
	}

	// Gauges mirror the configuration; histograms mirror the ledger: one
	// observation per completed evaluation, and the retry histogram's sum
	// is the total retry count.
	if got := snap.Gauge(core.MetricWorkers); got != 4 {
		t.Errorf("workers gauge = %v, want 4", got)
	}
	if got := snap.Gauge(core.MetricSamples); got != 40 {
		t.Errorf("samples gauge = %v, want 40", got)
	}
	if got := snap.Gauge(core.MetricModules); got != float64(len(res.Partition.Modules)) {
		t.Errorf("modules gauge = %v, want %d", got, len(res.Partition.Modules))
	}
	if got := snap.Gauge(core.MetricQuarantined); got != float64(len(sess.Quarantined())) {
		t.Errorf("quarantined gauge = %v, want %d", got, len(sess.Quarantined()))
	}
	evals := counters[core.MetricEvals]
	for _, h := range []string{core.MetricEvalSimSeconds, core.MetricEvalRetries} {
		if hs, ok := snap.Histograms[h]; !ok || hs.Count != evals {
			t.Errorf("histogram %q count = %+v, want one observation per eval (%d)", h, snap.Histograms[h], evals)
		}
	}
	if sum := snap.Histograms[core.MetricEvalRetries].Sum; sum != float64(counters[core.MetricRetries]) {
		t.Errorf("retry histogram sum %v != retries counter %d", sum, counters[core.MetricRetries])
	}
}

// Report.Metrics must agree with the Report's own cost and fault fields
// — the facade-level face of the same property.
func TestReportMetricsMatchTallies(t *testing.T) {
	m, _ := MachineByName("sandybridge")
	prog, err := Benchmark(Swim)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewTuner(Options{
		Machine: m, Samples: 40, TopX: 8, Seed: "report-metrics",
		Faults: DefaultFaultRates(),
	}).Tune(prog, TuningInput(Swim, m))
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Metrics
	checks := map[string][2]int64{
		core.MetricCompiles:        {s.Counter(core.MetricCompiles), rep.Compiles},
		core.MetricRuns:            {s.Counter(core.MetricRuns), rep.Runs},
		core.MetricRetries:         {s.Counter(core.MetricRetries), rep.Faults.Retries},
		core.MetricFlakes:          {s.Counter(core.MetricFlakes), rep.Faults.Flakes},
		core.MetricTimeouts:        {s.Counter(core.MetricTimeouts), rep.Faults.Timeouts},
		core.MetricCompileFailures: {s.Counter(core.MetricCompileFailures), rep.Faults.CompileFailures},
		core.MetricRunCrashes:      {s.Counter(core.MetricRunCrashes), rep.Faults.RunCrashes},
		core.MetricWastedCompiles:  {s.Counter(core.MetricWastedCompiles), rep.Faults.WastedCompiles},
	}
	for name, pair := range checks {
		if pair[0] != pair[1] {
			t.Errorf("metric %q = %d, Report says %d", name, pair[0], pair[1])
		}
	}
	if got := float64(s.Counter(core.MetricSimMicros)) / 1e6 / 3600; got != rep.SimulatedHours {
		t.Errorf("sim_micros implies %v hours, Report says %v", got, rep.SimulatedHours)
	}
	if got := s.Gauge(core.MetricQuarantined); got != float64(rep.Faults.Quarantined) {
		t.Errorf("quarantined gauge = %v, Report says %d", got, rep.Faults.Quarantined)
	}
	// Report.Cache also covers the outline phase (it precedes the session
	// and its instruments), so the metric counters are bounded by it.
	if hits, reported := s.Counter(core.MetricCacheObjectHits), rep.Cache.ObjectHits; hits == 0 || hits > reported {
		t.Errorf("cache_object_hits = %d, outside (0, %d]", hits, reported)
	}
}

// Options.Progress must receive periodic lines and a final "done" line
// with the exact completed-evaluation count; enabling it must not
// perturb the Report.
func TestProgressReporting(t *testing.T) {
	m, _ := MachineByName("broadwell")
	prog, err := Benchmark(Swim)
	if err != nil {
		t.Fatal(err)
	}
	in := TuningInput(Swim, m)
	base := Options{Machine: m, Samples: 12, TopX: 4, Seed: "progress"}
	plain, err := NewTuner(base).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	opts := base
	opts.Progress = &buf
	opts.ProgressEvery = time.Millisecond
	rep, err := NewTuner(opts).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fingerprint() != plain.Fingerprint() {
		t.Error("progress reporting changed the Report")
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, "24/24 evals (100.0%)") || !strings.HasSuffix(last, ", done") {
		t.Fatalf("final progress line %q lacks the completed tally", last)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "funcytuner: ") || !strings.Contains(line, "simulated hours") {
			t.Fatalf("malformed progress line %q in:\n%s", line, out)
		}
	}
}
