package funcytuner

import (
	"math"
	"testing"
)

func testTuner(t *testing.T) *Tuner {
	t.Helper()
	m, err := MachineByName("broadwell")
	if err != nil {
		t.Fatal(err)
	}
	return NewTuner(Options{Machine: m, Samples: 200, TopX: 20, Seed: "facade-test"})
}

func TestBenchmarkLookup(t *testing.T) {
	if len(Benchmarks()) != 7 {
		t.Fatalf("suite size %d", len(Benchmarks()))
	}
	prog, err := Benchmark(CloverLeaf)
	if err != nil || prog.Name != CloverLeaf {
		t.Fatalf("Benchmark(CL) = %v, %v", prog, err)
	}
	if _, err := Benchmark("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestMachines(t *testing.T) {
	if len(Machines()) != 3 {
		t.Fatal("expect three platforms")
	}
	if _, err := MachineByName("knl"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestSpaces(t *testing.T) {
	if ICCSpace().NumFlags() != 33 {
		t.Error("ICC space should expose 33 flags")
	}
	if GCCSpace().NumFlags() < 20 {
		t.Error("GCC space too small")
	}
}

func TestTunePipeline(t *testing.T) {
	tuner := testTuner(t)
	prog, _ := Benchmark(Swim)
	m, _ := MachineByName("broadwell")
	rep, err := tuner.Tune(prog, TuningInput(Swim, m))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best == nil || rep.Best.Algorithm != "CFR" {
		t.Fatal("Tune should return a CFR result")
	}
	if rep.Best.Speedup <= 0.9 || rep.Best.Speedup > 1.5 {
		t.Errorf("implausible speedup %v", rep.Best.Speedup)
	}
	if rep.Modules < 5 || rep.Modules > 33 {
		t.Errorf("J = %d outside the paper's range", rep.Modules)
	}
	if len(rep.HotLoops) == 0 {
		t.Error("no hot loops reported")
	}
	if rep.Runs == 0 || rep.Compiles == 0 || rep.SimulatedHours <= 0 {
		t.Error("cost accounting empty")
	}
	if len(rep.Best.ModuleCVs) != rep.Modules {
		t.Error("ModuleCVs does not match module count")
	}
}

func TestComparePipeline(t *testing.T) {
	tuner := testTuner(t)
	prog, _ := Benchmark(CloverLeaf)
	m, _ := MachineByName("broadwell")
	rep, err := tuner.Compare(prog, TuningInput(CloverLeaf, m))
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"Random", "FR", "G.realized", "G.Independent", "CFR"} {
		if rep.All[alg] == nil {
			t.Errorf("missing %s", alg)
		}
	}
	if rep.All["G.Independent"].Speedup < rep.All["G.realized"].Speedup {
		t.Error("independence bound below realized greedy")
	}
}

func TestDefaultsApplied(t *testing.T) {
	tuner := NewTuner(Options{})
	if tuner.opts.Machine.Name != "broadwell" {
		t.Error("default machine should be Broadwell")
	}
	if tuner.opts.Samples != 1000 || tuner.opts.TopX != 50 {
		t.Error("paper defaults not applied")
	}
	if !*tuner.opts.Noisy {
		t.Error("noise should default on")
	}
}

func TestProfileBaseline(t *testing.T) {
	prog, _ := Benchmark(CloverLeaf)
	m, _ := MachineByName("broadwell")
	prof, err := ProfileBaseline(prog, m, TuningInput(CloverLeaf, m), 3)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Total <= 0 || len(prof.PerLoop) != prog.NumLoops() {
		t.Fatal("malformed profile")
	}
	dt := prog.LoopIndex("dt")
	if s := prof.Share(dt); math.Abs(s-0.063) > 0.02 {
		t.Errorf("dt share %.3f, want ≈ 0.063 (Table 3)", s)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(nil); err == nil {
		t.Error("nil program accepted")
	}
	prog, _ := Benchmark(AMG)
	if err := Validate(prog); err != nil {
		t.Errorf("calibrated benchmark invalid: %v", err)
	}
}

func TestDeterministicTuning(t *testing.T) {
	prog, _ := Benchmark(Swim)
	m, _ := MachineByName("broadwell")
	in := TuningInput(Swim, m)
	a, err := testTuner(t).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := testTuner(t).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Speedup != b.Best.Speedup {
		t.Error("same-seed tuning runs differ")
	}
}
