package funcytuner

import (
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// Every benchmark must complete a tuning run under the default fault mix
// and produce a usable result; across the suite the injection machinery
// must actually fire.
func TestTuneWithFaultsAllBenchmarks(t *testing.T) {
	m, err := MachineByName("broadwell")
	if err != nil {
		t.Fatal(err)
	}
	var total FaultTally
	for _, name := range Benchmarks() {
		prog, err := Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		tuner := NewTuner(Options{
			Machine: m, Samples: 60, TopX: 10, Seed: "robustness",
			Faults: DefaultFaultRates(),
		})
		rep, err := tuner.Tune(prog, TuningInput(name, m))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !(rep.Best.Speedup > 0) || math.IsInf(rep.Best.Speedup, 0) {
			t.Errorf("%s: unusable speedup %v under faults", name, rep.Best.Speedup)
		}
		total.CompileFailures += rep.Faults.CompileFailures
		total.RunCrashes += rep.Faults.RunCrashes
		total.Flakes += rep.Faults.Flakes
		total.Retries += rep.Faults.Retries
		total.WastedCompiles += rep.Faults.WastedCompiles
		total.LostHours += rep.Faults.LostHours
		total.Quarantined += rep.Faults.Quarantined
	}
	if total.CompileFailures == 0 || total.Quarantined == 0 {
		t.Error("no compile failures across the whole suite at a 2% ICE rate")
	}
	if total.Flakes == 0 || total.Retries == 0 {
		t.Error("no flakes/retries across the whole suite at a 4% flake rate")
	}
	if total.WastedCompiles == 0 || !(total.LostHours > 0) {
		t.Error("fault injection cost nothing across the whole suite")
	}
}

// An Options-level killed-and-resumed run must report exactly what the
// uninterrupted run reports.
func TestKillResumeReportEquality(t *testing.T) {
	m, _ := MachineByName("sandybridge")
	prog, err := Benchmark(Swim)
	if err != nil {
		t.Fatal(err)
	}
	in := TuningInput(Swim, m)
	base := Options{
		Machine: m, Samples: 40, TopX: 8, Seed: "resume-equality",
		Faults: DefaultFaultRates(), CheckpointEvery: 5,
	}
	want, err := NewTuner(base).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "tune.ckpt")
	killOpts := base
	killOpts.Checkpoint = path
	killOpts.KillAfterEvals = 25
	if _, err := NewTuner(killOpts).Tune(prog, in); !errors.Is(err, ErrKilled) {
		t.Fatalf("expected ErrKilled, got %v", err)
	}

	resumeOpts := base
	resumeOpts.Resume = path
	got, err := NewTuner(resumeOpts).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	if got.Best.BestMeasured != want.Best.BestMeasured || got.Best.Speedup != want.Best.Speedup {
		t.Fatalf("resumed best (%v, %v) != uninterrupted (%v, %v)",
			got.Best.BestMeasured, got.Best.Speedup, want.Best.BestMeasured, want.Best.Speedup)
	}
	for i := range want.Best.Trace {
		if got.Best.Trace[i] != want.Best.Trace[i] {
			t.Fatalf("trace[%d] differs after resume", i)
		}
	}
	if got.Compiles != want.Compiles || got.Runs != want.Runs || got.SimulatedHours != want.SimulatedHours {
		t.Fatalf("resumed cost (%d, %d, %v) != uninterrupted (%d, %d, %v)",
			got.Compiles, got.Runs, got.SimulatedHours, want.Compiles, want.Runs, want.SimulatedHours)
	}
	if got.Faults != want.Faults {
		t.Fatalf("resumed fault tally %+v != uninterrupted %+v", got.Faults, want.Faults)
	}
}

// Cache-on runs must be bit-identical to cache-off runs for the same
// seed, across worker counts 1/4/GOMAXPROCS and with both zero and
// nonzero fault rates. Report.Fingerprint covers every deterministic
// output (all five algorithms, traces, profile, simulated costs, fault
// tallies) and excludes only the cache counters themselves.
func TestCacheBitIdenticalAcrossWorkersAndFaults(t *testing.T) {
	m, _ := MachineByName("broadwell")
	prog, err := Benchmark(CloverLeaf)
	if err != nil {
		t.Fatal(err)
	}
	in := TuningInput(CloverLeaf, m)
	for _, rates := range []FaultRates{{}, DefaultFaultRates()} {
		faulty := rates != (FaultRates{})
		off := Options{
			Machine: m, Samples: 30, TopX: 6, Seed: "cache-equality",
			Faults: rates, Workers: 1, CacheSize: -1,
		}
		want, err := NewTuner(off).Compare(prog, in)
		if err != nil {
			t.Fatal(err)
		}
		if want.Cache != (CacheStats{}) {
			t.Fatalf("faults=%v: cache-off run reported cache activity: %+v", faulty, want.Cache)
		}
		wantFP := want.Fingerprint()
		for _, workers := range []int{1, 4, 0} {
			on := off
			on.Workers = workers
			on.CacheSize = 0 // default-size cache
			got, err := NewTuner(on).Compare(prog, in)
			if err != nil {
				t.Fatal(err)
			}
			if got.Fingerprint() != wantFP {
				t.Errorf("faults=%v workers=%d: cache-on fingerprint differs from cache-off", faulty, workers)
			}
			if got.Compiles != want.Compiles || got.Runs != want.Runs {
				t.Errorf("faults=%v workers=%d: simulated cost changed: (%d, %d) vs (%d, %d)",
					faulty, workers, got.Compiles, got.Runs, want.Compiles, want.Runs)
			}
			if got.Cache.ObjectHits == 0 || got.Cache.Hits() == 0 {
				t.Errorf("faults=%v workers=%d: cache never hit: %+v", faulty, workers, got.Cache)
			}
		}
	}
}

// A killed-and-resumed run with the cache enabled must report exactly
// what an uninterrupted cache-off run reports — checkpoint/resume and
// memoization compose without touching results. Under nonzero fault
// rates this also pins the fault/quarantine interaction: injected ICE
// draws key on CV fingerprints, never on whether a compile physically
// ran, so cached runs quarantine identically.
func TestKillResumeCacheEquality(t *testing.T) {
	m, _ := MachineByName("sandybridge")
	prog, err := Benchmark(Swim)
	if err != nil {
		t.Fatal(err)
	}
	in := TuningInput(Swim, m)
	off := Options{
		Machine: m, Samples: 40, TopX: 8, Seed: "cache-resume",
		Faults: DefaultFaultRates(), CheckpointEvery: 5, CacheSize: -1,
	}
	want, err := NewTuner(off).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "tune.ckpt")
	killOpts := off
	killOpts.CacheSize = 0 // cache on
	killOpts.Checkpoint = path
	killOpts.KillAfterEvals = 25
	if _, err := NewTuner(killOpts).Tune(prog, in); !errors.Is(err, ErrKilled) {
		t.Fatalf("expected ErrKilled, got %v", err)
	}

	resumeOpts := off
	resumeOpts.CacheSize = 0
	resumeOpts.Resume = path
	got, err := NewTuner(resumeOpts).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("cached kill/resume fingerprint differs from uninterrupted cache-off run")
	}
	if got.Faults != want.Faults {
		t.Fatalf("cached resume fault tally %+v != %+v", got.Faults, want.Faults)
	}
}

// NewTuner defers option validation to the first pipeline call.
func TestNewTunerValidation(t *testing.T) {
	m, _ := MachineByName("broadwell")
	prog, err := Benchmark(Swim)
	if err != nil {
		t.Fatal(err)
	}
	in := TuningInput(Swim, m)
	bad := []Options{
		{Samples: -1},
		{TopX: -5},
		{Workers: -2},
		{Samples: 10, TopX: 50}, // TopX > Samples
		{HotThreshold: -0.5},
		{HotThreshold: 1.5},
		{MaxRetries: -1},
		{BackoffSeconds: -1},
		{BackoffCapSeconds: -1},
		{TimeoutBudget: -1},
		{TimeoutBudget: math.Inf(1)},
		{CheckpointEvery: -1},
		{KillAfterEvals: -1},
		{Faults: FaultRates{RunCrash: 1.5}},
		{Faults: FaultRates{Flake: math.NaN()}},
	}
	for i, opts := range bad {
		opts.Machine = m
		tuner := NewTuner(opts)
		if _, err := tuner.Tune(prog, in); err == nil {
			t.Errorf("bad options %d accepted: %+v", i, bad[i])
		}
	}
	// Sane options (including fault injection) still pass.
	tuner := NewTuner(Options{Machine: m, Samples: 20, TopX: 5, Faults: DefaultFaultRates()})
	if _, err := tuner.Tune(prog, in); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

// LoadTuning rejects documents that could not have come from a real run.
func TestLoadTuningHardening(t *testing.T) {
	module := `{"name":"m","flags":"` + ICCSpace().Baseline().String() + `"}`
	valid := `{"program":"nobody","flavor":"icc","speedup":1.1,"baseline_seconds":100,"modules":[` + module + `]}`
	if _, _, err := LoadTuning(strings.NewReader(valid)); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	bad := map[string]string{
		"unknown flavor": `{"flavor":"llvm","speedup":1.1,"baseline_seconds":100,"modules":[` + module + `]}`,
		"zero speedup":   `{"flavor":"icc","baseline_seconds":100,"modules":[` + module + `]}`,
		"negative":       `{"flavor":"icc","speedup":-2,"baseline_seconds":100,"modules":[` + module + `]}`,
		"zero baseline":  `{"flavor":"icc","speedup":1.1,"modules":[` + module + `]}`,
		"no modules":     `{"flavor":"icc","speedup":1.1,"baseline_seconds":100,"modules":[]}`,
		"too many module": `{"program":"swim","flavor":"icc","speedup":1.1,"baseline_seconds":100,"modules":[` +
			strings.Repeat(module+",", 40) + module + `]}`,
	}
	for name, doc := range bad {
		if _, _, err := LoadTuning(strings.NewReader(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// A checkpoint written by a faulted, killed run loads and validates.
func TestLoadCheckpointFromRun(t *testing.T) {
	m, _ := MachineByName("broadwell")
	prog, err := Benchmark(CloverLeaf)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	tuner := NewTuner(Options{
		Machine: m, Samples: 30, TopX: 5, Seed: "ckload",
		Faults: DefaultFaultRates(), Checkpoint: path, CheckpointEvery: 3,
		KillAfterEvals: 12,
	})
	if _, err := tuner.Tune(prog, TuningInput(CloverLeaf, m)); !errors.Is(err, ErrKilled) {
		t.Fatalf("expected ErrKilled, got %v", err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Program != prog.Name || ck.Samples != 30 || len(ck.CollectDone) == 0 {
		t.Fatalf("checkpoint does not reflect the run: %+v", ck)
	}
}
