package funcytuner

import (
	"errors"
	"path/filepath"
	"testing"
)

// nonCFRTechniques are the pluggable techniques that must ride the same
// determinism/chaos machinery as CFR.
var nonCFRTechniques = []string{"bo", "ga"}

// BO and GA runs must be deterministic per seed and invariant across
// worker counts and cache on/off — the same guarantees the CFR
// fingerprint tests pin, exercised through the technique plumbing.
func TestTechniqueWorkerAndCacheInvariance(t *testing.T) {
	t.Parallel()
	m, _ := MachineByName("sandybridge")
	prog, err := Benchmark(Swim)
	if err != nil {
		t.Fatal(err)
	}
	in := TuningInput(Swim, m)
	for _, tech := range nonCFRTechniques {
		tech := tech
		t.Run(tech, func(t *testing.T) {
			t.Parallel()
			base := Options{
				Machine: m, Samples: 60, TopX: 8, Seed: "technique-invariance",
				Technique: tech, Faults: DefaultFaultRates(),
			}
			ref, err := NewTuner(base).Tune(prog, in)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Best.Algorithm != map[string]string{"bo": "BO", "ga": "GA"}[tech] {
				t.Fatalf("Best.Algorithm = %q", ref.Best.Algorithm)
			}
			variants := []Options{base, base, base}
			variants[0].Workers = 4
			variants[1].CacheSize = -1 // cache off
			variants[2].Workers = 7
			variants[2].CacheSize = 2 // pathologically small cache
			for vi, opts := range variants {
				got, err := NewTuner(opts).Tune(prog, in)
				if err != nil {
					t.Fatal(err)
				}
				if got.Fingerprint() != ref.Fingerprint() {
					t.Fatalf("variant %d fingerprint %#x != reference %#x", vi, got.Fingerprint(), ref.Fingerprint())
				}
			}
		})
	}
}

// Killing a BO or GA campaign mid-run and resuming from its checkpoint
// must reproduce the uninterrupted run's fingerprint bit for bit, with
// faults injected — the technique carries no checkpoint state of its
// own, so deterministic replay must cover it completely.
func TestTechniqueKillResumeFingerprint(t *testing.T) {
	t.Parallel()
	m, _ := MachineByName("broadwell")
	prog, err := Benchmark(CloverLeaf)
	if err != nil {
		t.Fatal(err)
	}
	in := TuningInput(CloverLeaf, m)
	for _, tech := range nonCFRTechniques {
		tech := tech
		t.Run(tech, func(t *testing.T) {
			t.Parallel()
			base := Options{
				Machine: m, Samples: 70, TopX: 8, Seed: "technique-resume",
				Technique: tech, Faults: DefaultFaultRates(), CheckpointEvery: 5,
			}
			want, err := NewTuner(base).Tune(prog, in)
			if err != nil {
				t.Fatal(err)
			}

			// Kill once in the collection phase and once mid-search, so
			// resume is proven from both sides of the technique handoff.
			for _, killAt := range []int{20, 55} {
				path := filepath.Join(t.TempDir(), "tune.ckpt")
				killOpts := base
				killOpts.Checkpoint = path
				killOpts.KillAfterEvals = killAt
				if _, err := NewTuner(killOpts).Tune(prog, in); !errors.Is(err, ErrKilled) {
					t.Fatalf("kill at %d: expected ErrKilled, got %v", killAt, err)
				}
				resumeOpts := base
				resumeOpts.Resume = path
				got, err := NewTuner(resumeOpts).Tune(prog, in)
				if err != nil {
					t.Fatal(err)
				}
				if got.Fingerprint() != want.Fingerprint() {
					t.Fatalf("kill at %d: resumed fingerprint %#x != uninterrupted %#x",
						killAt, got.Fingerprint(), want.Fingerprint())
				}
			}
		})
	}
}

// Warm starts: a BO/GA run seeded from prior results in the repository
// must (a) actually consume the prior run's winner as a seed and
// diverge from the cold run, (b) be deterministic given the same
// repository contents, and (c) never be conflated with the cold run in
// the repository (the warm digest is part of the stored identity).
// Because every finished run is itself stored, the repository evolves
// between warm invocations — so determinism is asserted across two
// bit-identical repositories, not two runs over one mutating one.
func TestWarmStartFromRepo(t *testing.T) {
	t.Parallel()
	m, _ := MachineByName("broadwell")
	prog, err := Benchmark(CloverLeaf)
	if err != nil {
		t.Fatal(err)
	}
	in := TuningInput(CloverLeaf, m)
	repoA := filepath.Join(t.TempDir(), "repo-a")
	repoB := filepath.Join(t.TempDir(), "repo-b")

	// Populate both repositories with the same finished CFR run on the
	// same program/machine — the natural warm-start donor. Tuning is
	// deterministic, so the two repositories are bit-identical.
	for _, repo := range []string{repoA, repoB} {
		donor := Options{
			Machine: m, Samples: 60, TopX: 8, Seed: "warm-donor", RepoPath: repo,
		}
		if _, err := NewTuner(donor).Tune(prog, in); err != nil {
			t.Fatal(err)
		}
	}

	for _, tech := range nonCFRTechniques {
		t.Run(tech, func(t *testing.T) {
			// Every run below executes against both repositories so they
			// stay bit-identical for the next technique's iteration.
			runBoth := func(opts Options) (onA, onB *Report) {
				for i, repo := range []string{repoA, repoB} {
					o := opts
					o.RepoPath = repo
					rep, err := NewTuner(o).Tune(prog, in)
					if err != nil {
						t.Fatal(err)
					}
					if i == 0 {
						onA = rep
					} else {
						onB = rep
					}
				}
				return onA, onB
			}

			cold := Options{
				Machine: m, Samples: 50, TopX: 8, Seed: "warm-consumer",
				Technique: tech, SkipExist: true,
			}
			coldRep, coldRepB := runBoth(cold)
			if coldRep.Served || coldRepB.Served {
				t.Fatal("cold run claims to be repo-served")
			}

			warm := cold
			warm.WarmStart = true
			warmRep, warmRepB := runBoth(warm)
			if warmRep.Served {
				t.Fatal("warm run was served the cold run's entry: the warm digest is not in the repo key")
			}
			if warmRep.Metrics.Counter("search_warm_seeds") < 1 {
				t.Fatalf("warm run consumed no seeds (search_warm_seeds = %d)",
					warmRep.Metrics.Counter("search_warm_seeds"))
			}
			// The donor's winner leads the initial design, so the warm
			// search must actually diverge from the cold one. (No claim
			// about measured times: noise is re-drawn per evaluation, so
			// the donor's winner measures differently here.)
			if warmRep.Fingerprint() == coldRep.Fingerprint() {
				t.Fatal("warm-started run is bit-identical to the cold run: seeds had no effect")
			}
			// Same repository contents, same options: warm starts are
			// deterministic.
			if warmRep.Fingerprint() != warmRepB.Fingerprint() {
				t.Fatalf("warm fingerprints diverge across identical repositories: %#x != %#x",
					warmRep.Fingerprint(), warmRepB.Fingerprint())
			}

			// The cold entry's key does not include a warm digest, so it
			// is still servable after the warm runs were stored — and the
			// technique tag in the key serves the right technique's run.
			served, servedB := runBoth(cold)
			if !served.Served || !servedB.Served {
				t.Fatal("identical cold re-run was not served from the repository")
			}
			if served.Fingerprint() != coldRep.Fingerprint() {
				t.Fatalf("served cold fingerprint %#x != computed %#x", served.Fingerprint(), coldRep.Fingerprint())
			}
		})
	}
}

// A warm start against a repository with no usable donors must degrade
// to the cold run, not fail: the digest of zero seeds is still folded
// into the key, but the search itself is seedless.
func TestWarmStartEmptyRepo(t *testing.T) {
	t.Parallel()
	m, _ := MachineByName("opteron")
	prog, err := Benchmark(Swim)
	if err != nil {
		t.Fatal(err)
	}
	in := TuningInput(Swim, m)
	opts := Options{
		Machine: m, Samples: 40, TopX: 6, Seed: "warm-empty",
		Technique: "bo", RepoPath: filepath.Join(t.TempDir(), "repo"), WarmStart: true,
	}
	rep, err := NewTuner(opts).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.Counter("search_warm_seeds") != 0 {
		t.Fatalf("empty repo yielded %d warm seeds", rep.Metrics.Counter("search_warm_seeds"))
	}
	cold := opts
	cold.WarmStart = false
	cold.RepoPath = ""
	coldRep, err := NewTuner(cold).Tune(prog, in)
	if err != nil {
		t.Fatal(err)
	}
	if coldRep.Fingerprint() != rep.Fingerprint() {
		t.Fatalf("zero-seed warm run fingerprint %#x != cold run %#x", rep.Fingerprint(), coldRep.Fingerprint())
	}
}
