package funcytuner

import "funcytuner/internal/core"

// ModuleAttribution is a leave-one-out marginal: how much slower the
// tuned executable gets when one module reverts to the O3 baseline CV.
type ModuleAttribution = core.ModuleAttribution

// CriticalFlags runs the paper's §4.4.1 greedy flag elimination on one
// module of the report's best configuration: non-default flags are reset
// to their defaults whenever doing so does not degrade end-to-end
// performance; the survivors are that module's critical flags, in
// command-line form. Module indices follow Report.Best.ModuleCVs.
func (r *Report) CriticalFlags(module int) ([]string, error) {
	return r.sess.CriticalFlags(r.Best.ModuleCVs, module, 1e-3)
}

// Attribution computes every module's leave-one-out marginal for the
// report's best configuration. Marginals need not sum to the end-to-end
// win — the residual is exactly the inter-module interaction (§3.4's
// failed independence assumption) that per-loop greedy tuning trips over.
func (r *Report) Attribution() ([]ModuleAttribution, error) {
	return r.sess.Attribution(r.Best.ModuleCVs)
}

// ModuleName returns the partition module name for an index of
// Report.Best.ModuleCVs ("loop:dt", "base", ...).
func (r *Report) ModuleName(module int) string {
	return r.sess.Part.Modules[module].Name
}

// ModuleLoops returns the program loop indices compiled in a module.
func (r *Report) ModuleLoops(module int) []int {
	return append([]int(nil), r.sess.Part.Modules[module].LoopIdx...)
}
